package sqldb

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"pyxis/internal/val"
)

func mustExec(t *testing.T, s *Session, sql string, args ...val.Value) int {
	t.Helper()
	n, err := s.Exec(sql, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return n
}

func mustQuery(t *testing.T, s *Session, sql string, args ...val.Value) *ResultSet {
	t.Helper()
	rs, err := s.Query(sql, args...)
	if err != nil {
		t.Fatalf("Query(%q): %v", sql, err)
	}
	return rs
}

func newAccountsDB(t *testing.T) (*DB, *Session) {
	t.Helper()
	db := Open()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE accounts (cid INT PRIMARY KEY, name VARCHAR(20), balance DOUBLE)")
	for i := 1; i <= 10; i++ {
		mustExec(t, s, "INSERT INTO accounts VALUES (?, ?, ?)",
			val.IntV(int64(i)), val.StrV(fmt.Sprintf("user%d", i)), val.DoubleV(float64(i)*100))
	}
	return db, s
}

func TestCreateInsertSelect(t *testing.T) {
	_, s := newAccountsDB(t)
	rs := mustQuery(t, s, "SELECT * FROM accounts WHERE cid = ?", val.IntV(3))
	if len(rs.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rs.Rows))
	}
	if rs.Rows[0][1].S != "user3" || rs.Rows[0][2].F != 300 {
		t.Errorf("row = %v", rs.Rows[0])
	}
	if len(rs.Cols) != 3 || rs.Cols[0] != "CID" {
		t.Errorf("cols = %v", rs.Cols)
	}
}

func TestProjectionAndWhere(t *testing.T) {
	_, s := newAccountsDB(t)
	rs := mustQuery(t, s, "SELECT name, balance FROM accounts WHERE balance >= 800")
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rs.Rows))
	}
	for _, r := range rs.Rows {
		if len(r) != 2 || r[1].F < 800 {
			t.Errorf("bad row %v", r)
		}
	}
}

func TestUpdateWithArithmetic(t *testing.T) {
	_, s := newAccountsDB(t)
	n := mustExec(t, s, "UPDATE accounts SET balance = balance - ? WHERE cid = ?", val.DoubleV(50), val.IntV(2))
	if n != 1 {
		t.Fatalf("updated %d rows, want 1", n)
	}
	rs := mustQuery(t, s, "SELECT balance FROM accounts WHERE cid = 2")
	if rs.Rows[0][0].F != 150 {
		t.Errorf("balance = %v, want 150", rs.Rows[0][0])
	}
}

func TestDelete(t *testing.T) {
	_, s := newAccountsDB(t)
	n := mustExec(t, s, "DELETE FROM accounts WHERE cid > 5")
	if n != 5 {
		t.Fatalf("deleted %d, want 5", n)
	}
	rs := mustQuery(t, s, "SELECT COUNT(*) FROM accounts")
	if rs.Rows[0][0].I != 5 {
		t.Errorf("count = %v, want 5", rs.Rows[0][0])
	}
}

func TestDuplicatePK(t *testing.T) {
	_, s := newAccountsDB(t)
	_, err := s.Exec("INSERT INTO accounts VALUES (1, 'dup', 0.0)")
	if !errors.Is(err, ErrDupKey) {
		t.Fatalf("err = %v, want ErrDupKey", err)
	}
}

func TestAggregates(t *testing.T) {
	_, s := newAccountsDB(t)
	rs := mustQuery(t, s, "SELECT COUNT(*), SUM(balance), MIN(balance), MAX(balance), AVG(balance) FROM accounts")
	r := rs.Rows[0]
	if r[0].I != 10 {
		t.Errorf("count = %v", r[0])
	}
	if r[1].F != 5500 {
		t.Errorf("sum = %v, want 5500", r[1])
	}
	if r[2].F != 100 || r[3].F != 1000 {
		t.Errorf("min/max = %v/%v", r[2], r[3])
	}
	if r[4].F != 550 {
		t.Errorf("avg = %v, want 550", r[4])
	}
}

func TestAggregateEmptySet(t *testing.T) {
	_, s := newAccountsDB(t)
	rs := mustQuery(t, s, "SELECT COUNT(*), SUM(balance) FROM accounts WHERE cid > 1000")
	if rs.Rows[0][0].I != 0 {
		t.Errorf("count = %v, want 0", rs.Rows[0][0])
	}
}

func TestOrderByLimit(t *testing.T) {
	_, s := newAccountsDB(t)
	rs := mustQuery(t, s, "SELECT cid FROM accounts ORDER BY balance DESC LIMIT 3")
	want := []int64{10, 9, 8}
	if len(rs.Rows) != 3 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	for i, w := range want {
		if rs.Rows[i][0].I != w {
			t.Errorf("row %d = %v, want %d", i, rs.Rows[i][0], w)
		}
	}
}

func TestSecondaryIndexUsed(t *testing.T) {
	db, s := newAccountsDB(t)
	mustExec(t, s, "CREATE INDEX idx_name ON accounts (name)")
	before := db.Stats().RowsScanned
	rs := mustQuery(t, s, "SELECT cid FROM accounts WHERE name = ?", val.StrV("user7"))
	after := db.Stats().RowsScanned
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 7 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	if scanned := after - before; scanned != 1 {
		t.Errorf("scanned %d rows via index, want 1", scanned)
	}
}

func TestLike(t *testing.T) {
	_, s := newAccountsDB(t)
	rs := mustQuery(t, s, "SELECT COUNT(*) FROM accounts WHERE name LIKE 'user1%'")
	// user1, user10
	if rs.Rows[0][0].I != 2 {
		t.Errorf("count = %v, want 2", rs.Rows[0][0])
	}
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "he%", true},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "h%o", true},
		{"hello", "x%", false},
		{"hello", "%x%", false},
		{"", "%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
}

func TestJoin(t *testing.T) {
	db := Open()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE item (i_id INT PRIMARY KEY, i_title VARCHAR(60), i_a_id INT)")
	mustExec(t, s, "CREATE TABLE author (a_id INT PRIMARY KEY, a_name VARCHAR(60))")
	mustExec(t, s, "INSERT INTO author VALUES (1, 'knuth')")
	mustExec(t, s, "INSERT INTO author VALUES (2, 'lamport')")
	mustExec(t, s, "INSERT INTO item VALUES (10, 'taocp', 1)")
	mustExec(t, s, "INSERT INTO item VALUES (11, 'paxos', 2)")
	mustExec(t, s, "INSERT INTO item VALUES (12, 'latex', 2)")

	rs := mustQuery(t, s, "SELECT i_title, a_name FROM item, author WHERE i_a_id = a_id AND a_name = ?", val.StrV("lamport"))
	if len(rs.Rows) != 2 {
		t.Fatalf("rows = %v", rs.Rows)
	}
	for _, r := range rs.Rows {
		if r[1].S != "lamport" {
			t.Errorf("bad join row %v", r)
		}
	}

	// Join with alias qualification.
	rs = mustQuery(t, s, "SELECT i.i_title FROM item i, author a WHERE i.i_a_id = a.a_id AND a.a_id = 1")
	if len(rs.Rows) != 1 || rs.Rows[0][0].S != "taocp" {
		t.Fatalf("alias join rows = %v", rs.Rows)
	}
}

func TestTransactionCommitRollback(t *testing.T) {
	_, s := newAccountsDB(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE accounts SET balance = 0.0 WHERE cid = 1")
	mustExec(t, s, "INSERT INTO accounts VALUES (99, 'temp', 1.0)")
	mustExec(t, s, "DELETE FROM accounts WHERE cid = 2")
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	rs := mustQuery(t, s, "SELECT balance FROM accounts WHERE cid = 1")
	if rs.Rows[0][0].F != 100 {
		t.Errorf("rollback did not restore update: %v", rs.Rows[0][0])
	}
	rs = mustQuery(t, s, "SELECT COUNT(*) FROM accounts")
	if rs.Rows[0][0].I != 10 {
		t.Errorf("rollback did not restore inserts/deletes: count=%v", rs.Rows[0][0])
	}

	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE accounts SET balance = 0.0 WHERE cid = 1")
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	rs = mustQuery(t, s, "SELECT balance FROM accounts WHERE cid = 1")
	if rs.Rows[0][0].F != 0 {
		t.Errorf("commit lost update: %v", rs.Rows[0][0])
	}
}

func TestTxnStateErrors(t *testing.T) {
	_, s := newAccountsDB(t)
	if err := s.Commit(); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("Commit outside txn: %v", err)
	}
	if err := s.Rollback(); !errors.Is(err, ErrNoTransaction) {
		t.Errorf("Rollback outside txn: %v", err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); !errors.Is(err, ErrInTransaction) {
		t.Errorf("nested Begin: %v", err)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestNoDirtyRead: a reader must block on an uncommitted write and see
// the committed value afterwards.
func TestNoDirtyRead(t *testing.T) {
	db, s1 := newAccountsDB(t)
	s2 := db.NewSession()

	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1, "UPDATE accounts SET balance = 42.0 WHERE cid = 1")

	got := make(chan float64, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rs, err := s2.Query("SELECT balance FROM accounts WHERE cid = 1")
		if err != nil {
			t.Errorf("reader: %v", err)
			got <- -1
			return
		}
		got <- rs.Rows[0][0].F
	}()

	select {
	case v := <-got:
		t.Fatalf("reader returned %v before writer committed (dirty read)", v)
	case <-time.After(30 * time.Millisecond):
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if v := <-got; v != 42 {
		t.Errorf("reader saw %v, want committed 42", v)
	}
}

// TestDeadlockDetection: classic two-transaction crossing upgrade.
func TestDeadlockDetection(t *testing.T) {
	db, s1 := newAccountsDB(t)
	s2 := db.NewSession()

	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1, "UPDATE accounts SET balance = 1.0 WHERE cid = 1")
	mustExec(t, s2, "UPDATE accounts SET balance = 2.0 WHERE cid = 2")

	errs := make(chan error, 2)
	go func() {
		_, err := s1.Exec("UPDATE accounts SET balance = 1.0 WHERE cid = 2")
		errs <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_, err2 := s2.Exec("UPDATE accounts SET balance = 2.0 WHERE cid = 1")
	if !errors.Is(err2, ErrDeadlock) {
		t.Fatalf("expected deadlock for s2, got %v", err2)
	}
	// s2 aborted by deadlock; s1 should now complete.
	if err := <-errs; err != nil {
		t.Fatalf("s1 should proceed after victim aborts: %v", err)
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	_, dl := db.LockWaits()
	if dl == 0 {
		t.Error("deadlock counter not incremented")
	}
}

// TestSerializedTransfers runs concurrent balance transfers and checks
// that the total is conserved (atomicity + isolation).
func TestSerializedTransfers(t *testing.T) {
	db, s := newAccountsDB(t)
	total := func() float64 {
		rs := mustQuery(t, s, "SELECT SUM(balance) FROM accounts")
		return rs.Rows[0][0].F
	}
	before := total()

	const workers = 8
	const transfers = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			sess := db.NewSession()
			for i := 0; i < transfers; i++ {
				from := rng.Intn(10) + 1
				to := rng.Intn(10) + 1
				if from == to {
					continue
				}
				if err := sess.Begin(); err != nil {
					t.Error(err)
					return
				}
				_, err := sess.Exec("UPDATE accounts SET balance = balance - 1.0 WHERE cid = ?", val.IntV(int64(from)))
				if err == nil {
					_, err = sess.Exec("UPDATE accounts SET balance = balance + 1.0 WHERE cid = ?", val.IntV(int64(to)))
				}
				if err != nil {
					if sess.InTxn() {
						_ = sess.Rollback()
					}
					continue // deadlock victim: retry not needed for the invariant
				}
				if err := sess.Commit(); err != nil {
					t.Error(err)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if after := total(); after != before {
		t.Errorf("total balance changed: %v -> %v", before, after)
	}
}

func TestCompositePK(t *testing.T) {
	db := Open()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE ol (o_id INT, num INT, qty INT, PRIMARY KEY (o_id, num))")
	for o := 1; o <= 3; o++ {
		for n := 1; n <= 4; n++ {
			mustExec(t, s, "INSERT INTO ol VALUES (?, ?, ?)", val.IntV(int64(o)), val.IntV(int64(n)), val.IntV(int64(o*n)))
		}
	}
	rs := mustQuery(t, s, "SELECT COUNT(*) FROM ol WHERE o_id = 2")
	if rs.Rows[0][0].I != 4 {
		t.Errorf("prefix scan count = %v, want 4", rs.Rows[0][0])
	}
	rs = mustQuery(t, s, "SELECT qty FROM ol WHERE o_id = 2 AND num = 3")
	if len(rs.Rows) != 1 || rs.Rows[0][0].I != 6 {
		t.Errorf("point lookup = %v", rs.Rows)
	}
	_, err := s.Exec("INSERT INTO ol VALUES (2, 3, 0)")
	if !errors.Is(err, ErrDupKey) {
		t.Errorf("composite dup: %v", err)
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := Open()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10), c DOUBLE)")
	mustExec(t, s, "INSERT INTO t (c, a, b) VALUES (1.5, 7, 'x')")
	rs := mustQuery(t, s, "SELECT a, b, c FROM t")
	r := rs.Rows[0]
	if r[0].I != 7 || r[1].S != "x" || r[2].F != 1.5 {
		t.Errorf("row = %v", r)
	}
}

func TestSQLErrors(t *testing.T) {
	db := Open()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (a INT PRIMARY KEY)")
	cases := []string{
		"SELECT * FROM missing",
		"INSERT INTO t VALUES (1, 2)",
		"UPDATE t SET nocol = 1",
		"SELECT nocol FROM t WHERE nocol = 1",
		"CREATE TABLE t (a INT PRIMARY KEY)",
		"CREATE TABLE nopk (a INT)",
		"FROB x",
		"SELECT * FROM t WHERE",
	}
	for _, sql := range cases {
		if _, qerr := s.Query(sql); qerr == nil {
			if _, xerr := s.Exec(sql); xerr == nil {
				t.Errorf("%q: expected error", sql)
			}
		}
	}
	if _, err := s.Exec("SELECT * FROM t"); err == nil {
		t.Error("Exec(SELECT) should fail")
	}
	if _, err := s.Query("DELETE FROM t"); err == nil {
		t.Error("Query(DELETE) should fail")
	}
	if _, err := s.Exec("INSERT INTO t VALUES (?)"); err == nil {
		t.Error("missing parameter should fail")
	}
}

func TestParseSQLShapes(t *testing.T) {
	cases := []string{
		"SELECT w_tax FROM warehouse WHERE w_id = ?",
		"SELECT d_tax, d_next_o_id FROM district WHERE d_w_id = ? AND d_id = ?",
		"UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = ? AND d_id = ?",
		"INSERT INTO orders (o_id, o_d_id, o_w_id, o_c_id) VALUES (?, ?, ?, ?)",
		"SELECT i_price, i_name FROM item WHERE i_id = ?",
		"SELECT COUNT(*) FROM order_line WHERE ol_w_id = ?",
		"SELECT i_title FROM item ORDER BY i_pub_date DESC, i_title LIMIT 50",
		"SELECT a.a_name FROM item i, author a WHERE i.i_a_id = a.a_id AND i.i_id = ?",
		"DELETE FROM new_order WHERE no_o_id = ? AND no_d_id = ? AND no_w_id = ?",
		"SELECT i_title FROM item WHERE i_title LIKE ?",
		"UPDATE stock SET s_quantity = ?, s_ytd = s_ytd + ?, s_order_cnt = s_order_cnt + 1 WHERE s_i_id = ? AND s_w_id = ?",
	}
	for _, sql := range cases {
		if _, err := ParseSQL(sql); err != nil {
			t.Errorf("ParseSQL(%q): %v", sql, err)
		}
	}
}

// Property test: the B+tree agrees with a reference sorted map under
// random insert/delete/scan sequences.
func TestBTreeMatchesReference(t *testing.T) {
	f := func(ops []int16, seed int64) bool {
		tr := newBTree()
		ref := map[int64]int{}
		rng := rand.New(rand.NewSource(seed))
		for i, op := range ops {
			k := int64(op % 64)
			key := []val.Value{val.IntV(k)}
			switch rng.Intn(3) {
			case 0:
				insOK := tr.Insert(key, i)
				_, exists := ref[k]
				if insOK == exists {
					return false
				}
				if insOK {
					ref[k] = i
				}
			case 1:
				delOK := tr.Delete(key)
				_, exists := ref[k]
				if delOK != exists {
					return false
				}
				delete(ref, k)
			case 2:
				v, ok := tr.Get(key)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Full scan must visit keys in sorted order matching ref.
		var keys []int64
		tr.Scan(nil, nil, func(key []val.Value, v int) bool {
			keys = append(keys, key[0].I)
			return true
		})
		var want []int64
		for k := range ref {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(keys) != len(want) {
			return false
		}
		for i := range keys {
			if keys[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBTreeLargeSequential(t *testing.T) {
	tr := newBTree()
	const n = 10000
	for i := 0; i < n; i++ {
		if !tr.Insert([]val.Value{val.IntV(int64(i))}, i) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	for i := 0; i < n; i += 37 {
		v, ok := tr.Get([]val.Value{val.IntV(int64(i))})
		if !ok || v != i {
			t.Fatalf("get %d = %d,%v", i, v, ok)
		}
	}
	count := 0
	last := int64(-1)
	tr.Scan([]val.Value{val.IntV(100)}, []val.Value{val.IntV(199)}, func(key []val.Value, v int) bool {
		if key[0].I <= last {
			t.Fatalf("scan out of order: %d after %d", key[0].I, last)
		}
		last = key[0].I
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("range scan count = %d, want 100", count)
	}
}

// Property: commit/rollback leave the table in exactly the expected
// state for random operation sequences.
func TestTxnAtomicityProperty(t *testing.T) {
	f := func(ops []uint8, commit bool) bool {
		db := Open()
		s := db.NewSession()
		if _, err := s.Exec("CREATE TABLE t (k INT PRIMARY KEY, v INT)"); err != nil {
			return false
		}
		for i := 0; i < 8; i++ {
			if _, err := s.Exec("INSERT INTO t VALUES (?, 0)", val.IntV(int64(i))); err != nil {
				return false
			}
		}
		snapshot := func() map[int64]int64 {
			rs, _ := s.Query("SELECT k, v FROM t")
			m := map[int64]int64{}
			for _, r := range rs.Rows {
				m[r[0].I] = r[1].I
			}
			return m
		}
		before := snapshot()
		ref := map[int64]int64{}
		for k, v := range before {
			ref[k] = v
		}
		if err := s.Begin(); err != nil {
			return false
		}
		nextKey := int64(100)
		for _, op := range ops {
			k := int64(op % 12)
			switch op % 3 {
			case 0:
				if _, ok := ref[k]; ok {
					if _, err := s.Exec("UPDATE t SET v = v + 1 WHERE k = ?", val.IntV(k)); err != nil {
						return false
					}
					ref[k]++
				}
			case 1:
				if _, ok := ref[nextKey]; !ok {
					if _, err := s.Exec("INSERT INTO t VALUES (?, 7)", val.IntV(nextKey)); err != nil {
						return false
					}
					ref[nextKey] = 7
					nextKey++
				}
			case 2:
				if _, ok := ref[k]; ok {
					if _, err := s.Exec("DELETE FROM t WHERE k = ?", val.IntV(k)); err != nil {
						return false
					}
					delete(ref, k)
				}
			}
		}
		if commit {
			if err := s.Commit(); err != nil {
				return false
			}
		} else {
			if err := s.Rollback(); err != nil {
				return false
			}
			ref = before
		}
		after := snapshot()
		if len(after) != len(ref) {
			return false
		}
		for k, v := range ref {
			if after[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIndexMaintainedAcrossUpdateRollback(t *testing.T) {
	db := Open()
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE t (k INT PRIMARY KEY, tag VARCHAR(5))")
	mustExec(t, s, "CREATE INDEX it ON t (tag)")
	mustExec(t, s, "INSERT INTO t VALUES (1, 'a')")
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE t SET tag = 'b' WHERE k = 1")
	rs := mustQuery(t, s, "SELECT k FROM t WHERE tag = 'b'")
	if len(rs.Rows) != 1 {
		t.Fatalf("index should see in-txn update: %v", rs.Rows)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	rs = mustQuery(t, s, "SELECT k FROM t WHERE tag = 'a'")
	if len(rs.Rows) != 1 {
		t.Errorf("index entry not restored after rollback: %v", rs.Rows)
	}
	rs = mustQuery(t, s, "SELECT k FROM t WHERE tag = 'b'")
	if len(rs.Rows) != 0 {
		t.Errorf("stale index entry after rollback: %v", rs.Rows)
	}
}

func TestResultSetSize(t *testing.T) {
	rs := &ResultSet{Cols: []string{"A"}, Rows: [][]val.Value{{val.IntV(1)}, {val.IntV(2)}}}
	if rs.Size() <= 0 {
		t.Error("size should be positive")
	}
}
