// Package sqldb is an in-memory relational database engine: a SQL
// subset, B+tree indexes, two-phase-locking transactions with
// deadlock detection, and undo-log rollback. It stands in for the
// MySQL instance the Pyxis paper evaluated against; the benchmarks'
// every database access goes through it.
package sqldb

import (
	"fmt"
	"strconv"
	"strings"

	"pyxis/internal/val"
)

// ColType is a column type.
type ColType uint8

const (
	CInt ColType = iota
	CDouble
	CString
	CBool
)

func (c ColType) String() string {
	switch c {
	case CInt:
		return "INT"
	case CDouble:
		return "DOUBLE"
	case CString:
		return "VARCHAR"
	case CBool:
		return "BOOL"
	}
	return "?"
}

// ---------------------------------------------------------------------------
// SQL AST
// ---------------------------------------------------------------------------

// SQLStmt is a parsed SQL statement.
type SQLStmt interface{ sqlStmt() }

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type ColType
}

// CreateTableStmt creates a table. PK lists primary key column names.
type CreateTableStmt struct {
	Table string
	Cols  []ColumnDef
	PK    []string
}

// CreateIndexStmt creates a secondary index.
type CreateIndexStmt struct {
	Name   string
	Table  string
	Cols   []string
	Unique bool
}

// InsertStmt inserts one row.
type InsertStmt struct {
	Table string
	Cols  []string // optional explicit column list
	Vals  []SQLExpr
}

// SelectStmt is a (possibly multi-table, possibly aggregate) query.
type SelectStmt struct {
	Cols    []SelectCol
	Tables  []TableRef
	Where   []Cond
	OrderBy []OrderKey
	Limit   int // -1 = none
}

// SelectCol is one output column: a column reference or an aggregate.
type SelectCol struct {
	Star bool
	Agg  string // "", "COUNT", "SUM", "MIN", "MAX", "AVG"
	Col  ColRef // ignored for COUNT(*)
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Table, Alias string
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  ColRef
	Desc bool
}

// UpdateStmt updates matching rows.
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where []Cond
}

// SetClause is `col = expr` in UPDATE.
type SetClause struct {
	Col  string
	Expr SQLExpr
}

// DeleteStmt deletes matching rows.
type DeleteStmt struct {
	Table string
	Where []Cond
}

func (*CreateTableStmt) sqlStmt() {}
func (*CreateIndexStmt) sqlStmt() {}
func (*InsertStmt) sqlStmt()      {}
func (*SelectStmt) sqlStmt()      {}
func (*UpdateStmt) sqlStmt()      {}
func (*DeleteStmt) sqlStmt()      {}

// CmpOp is a comparison operator in WHERE.
type CmpOp uint8

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	CmpLike
)

// Cond is one conjunct of a WHERE clause: L op R.
type Cond struct {
	Op   CmpOp
	L, R SQLExpr
}

// SQLExpr is an expression: literal, ? parameter, column reference, or
// binary arithmetic (+,-,*) over those.
type SQLExpr interface{ sqlExpr() }

// LitExpr is a literal constant.
type LitExpr struct{ V val.Value }

// ParamExpr is the i-th `?` placeholder (0-based).
type ParamExpr struct{ Index int }

// ColRef references a column, optionally qualified (`t.col`).
type ColRef struct{ Table, Col string }

// ArithExpr is L op R where op is one of + - *.
type ArithExpr struct {
	Op   byte
	L, R SQLExpr
}

func (LitExpr) sqlExpr()    {}
func (ParamExpr) sqlExpr()  {}
func (ColRef) sqlExpr()     {}
func (*ArithExpr) sqlExpr() {}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

type sqlTok struct {
	kind byte // 'i' ident/keyword (upper-cased in text), 'n' number, 's' string, 'p' punct, 0 eof
	text string
}

func sqlLex(s string) ([]sqlTok, error) {
	var toks []sqlTok
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			j := i + 1
			var b strings.Builder
			for {
				if j >= len(s) {
					return nil, fmt.Errorf("sql: unterminated string literal")
				}
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' { // '' escape
						b.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				b.WriteByte(s[j])
				j++
			}
			toks = append(toks, sqlTok{'s', b.String()})
			i = j + 1
		case c >= '0' && c <= '9' || (c == '.' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9'):
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			toks = append(toks, sqlTok{'n', s[i:j]})
			i = j
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
			j := i
			for j < len(s) && (s[j] == '_' || s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' || s[j] >= '0' && s[j] <= '9') {
				j++
			}
			toks = append(toks, sqlTok{'i', strings.ToUpper(s[i:j])})
			i = j
		case c == '<' && i+1 < len(s) && (s[i+1] == '=' || s[i+1] == '>'):
			toks = append(toks, sqlTok{'p', s[i : i+2]})
			i += 2
		case c == '>' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, sqlTok{'p', ">="})
			i += 2
		case c == '!' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, sqlTok{'p', "<>"})
			i += 2
		case strings.IndexByte("(),*=<>?+-.", c) >= 0:
			toks = append(toks, sqlTok{'p', string(c)})
			i++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q", string(c))
		}
	}
	toks = append(toks, sqlTok{0, ""})
	return toks, nil
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

type sqlParser struct {
	toks   []sqlTok
	pos    int
	params int
}

// ParseSQL parses one SQL statement.
func ParseSQL(s string) (SQLStmt, error) {
	toks, err := sqlLex(s)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, fmt.Errorf("sql: %v (in %q)", err, s)
	}
	if p.cur().kind != 0 {
		return nil, fmt.Errorf("sql: trailing input %q (in %q)", p.cur().text, s)
	}
	return st, nil
}

func (p *sqlParser) cur() sqlTok { return p.toks[p.pos] }
func (p *sqlParser) next() sqlTok {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *sqlParser) kw(word string) bool {
	if p.cur().kind == 'i' && p.cur().text == word {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) punct(s string) bool {
	if p.cur().kind == 'p' && p.cur().text == s {
		p.next()
		return true
	}
	return false
}

func (p *sqlParser) expectKw(word string) error {
	if !p.kw(word) {
		return fmt.Errorf("expected %s, found %q", word, p.cur().text)
	}
	return nil
}

func (p *sqlParser) expectPunct(s string) error {
	if !p.punct(s) {
		return fmt.Errorf("expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	if p.cur().kind != 'i' {
		return "", fmt.Errorf("expected identifier, found %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *sqlParser) parseStmt() (SQLStmt, error) {
	switch {
	case p.kw("CREATE"):
		if p.kw("TABLE") {
			return p.parseCreateTable()
		}
		unique := p.kw("UNIQUE")
		if p.kw("INDEX") {
			return p.parseCreateIndex(unique)
		}
		return nil, fmt.Errorf("expected TABLE or INDEX after CREATE")
	case p.kw("INSERT"):
		return p.parseInsert()
	case p.kw("SELECT"):
		return p.parseSelect()
	case p.kw("UPDATE"):
		return p.parseUpdate()
	case p.kw("DELETE"):
		return p.parseDelete()
	}
	return nil, fmt.Errorf("unsupported statement start %q", p.cur().text)
}

func (p *sqlParser) parseCreateTable() (SQLStmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Table: name}
	for {
		if p.kw("PRIMARY") {
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.ident()
				if err != nil {
					return nil, err
				}
				st.PK = append(st.PK, c)
				if !p.punct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ct, err := p.parseColType()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, ColumnDef{Name: col, Type: ct})
			if p.kw("PRIMARY") {
				if err := p.expectKw("KEY"); err != nil {
					return nil, err
				}
				st.PK = append(st.PK, col)
			}
		}
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *sqlParser) parseColType() (ColType, error) {
	t, err := p.ident()
	if err != nil {
		return 0, err
	}
	switch t {
	case "INT", "INTEGER", "BIGINT", "SMALLINT":
		return CInt, nil
	case "DOUBLE", "FLOAT", "DECIMAL", "NUMERIC", "REAL":
		// DECIMAL(p,s) precision args are accepted and ignored.
		p.skipParenArgs()
		return CDouble, nil
	case "VARCHAR", "CHAR", "TEXT":
		p.skipParenArgs()
		return CString, nil
	case "BOOL", "BOOLEAN":
		return CBool, nil
	}
	return 0, fmt.Errorf("unknown column type %s", t)
}

func (p *sqlParser) skipParenArgs() {
	if !p.punct("(") {
		return
	}
	depth := 1
	for depth > 0 && p.cur().kind != 0 {
		t := p.next()
		if t.kind == 'p' {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
			}
		}
	}
}

func (p *sqlParser) parseCreateIndex(unique bool) (SQLStmt, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	st := &CreateIndexStmt{Name: name, Table: tbl, Unique: unique}
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, c)
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *sqlParser) parseInsert() (SQLStmt, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: tbl}
	if p.punct("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if !p.punct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Vals = append(st.Vals, e)
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *sqlParser) parseSelect() (SQLStmt, error) {
	st := &SelectStmt{Limit: -1}
	for {
		sc, err := p.parseSelectCol()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, sc)
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	for {
		tbl, err := p.ident()
		if err != nil {
			return nil, err
		}
		tr := TableRef{Table: tbl, Alias: tbl}
		if p.cur().kind == 'i' && !isSQLKeyword(p.cur().text) {
			tr.Alias = p.next().text
		}
		st.Tables = append(st.Tables, tr)
		if !p.punct(",") {
			break
		}
	}
	var err error
	st.Where, err = p.parseWhere()
	if err != nil {
		return nil, err
	}
	if p.kw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			cr, err := p.parseColRef()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: cr}
			if p.kw("DESC") {
				key.Desc = true
			} else {
				p.kw("ASC")
			}
			st.OrderBy = append(st.OrderBy, key)
			if !p.punct(",") {
				break
			}
		}
	}
	if p.kw("LIMIT") {
		if p.cur().kind != 'n' {
			return nil, fmt.Errorf("LIMIT requires a number")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil {
			return nil, err
		}
		st.Limit = n
	}
	return st, nil
}

var sqlKeywords = map[string]bool{
	"FROM": true, "WHERE": true, "ORDER": true, "BY": true, "LIMIT": true,
	"AND": true, "SET": true, "VALUES": true, "INTO": true, "ON": true,
	"DESC": true, "ASC": true, "LIKE": true, "SELECT": true, "PRIMARY": true,
}

func isSQLKeyword(s string) bool { return sqlKeywords[s] }

var aggNames = map[string]bool{"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true}

func (p *sqlParser) parseSelectCol() (SelectCol, error) {
	if p.punct("*") {
		return SelectCol{Star: true}, nil
	}
	if p.cur().kind == 'i' && aggNames[p.cur().text] && p.toks[p.pos+1].kind == 'p' && p.toks[p.pos+1].text == "(" {
		agg := p.next().text
		p.next() // (
		sc := SelectCol{Agg: agg}
		if p.punct("*") {
			if agg != "COUNT" {
				return SelectCol{}, fmt.Errorf("%s(*) is not supported", agg)
			}
		} else {
			cr, err := p.parseColRef()
			if err != nil {
				return SelectCol{}, err
			}
			sc.Col = cr
		}
		if err := p.expectPunct(")"); err != nil {
			return SelectCol{}, err
		}
		return sc, nil
	}
	cr, err := p.parseColRef()
	if err != nil {
		return SelectCol{}, err
	}
	return SelectCol{Col: cr}, nil
}

func (p *sqlParser) parseColRef() (ColRef, error) {
	a, err := p.ident()
	if err != nil {
		return ColRef{}, err
	}
	if p.punct(".") {
		b, err := p.ident()
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: a, Col: b}, nil
	}
	return ColRef{Col: a}, nil
}

func (p *sqlParser) parseWhere() ([]Cond, error) {
	if !p.kw("WHERE") {
		return nil, nil
	}
	var conds []Cond
	for {
		c, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		conds = append(conds, c)
		if !p.kw("AND") {
			break
		}
	}
	return conds, nil
}

func (p *sqlParser) parseCond() (Cond, error) {
	l, err := p.parseExpr()
	if err != nil {
		return Cond{}, err
	}
	var op CmpOp
	switch {
	case p.punct("="):
		op = CmpEq
	case p.punct("<>"):
		op = CmpNe
	case p.punct("<="):
		op = CmpLe
	case p.punct(">="):
		op = CmpGe
	case p.punct("<"):
		op = CmpLt
	case p.punct(">"):
		op = CmpGt
	case p.kw("LIKE"):
		op = CmpLike
	default:
		return Cond{}, fmt.Errorf("expected comparison operator, found %q", p.cur().text)
	}
	r, err := p.parseExpr()
	if err != nil {
		return Cond{}, err
	}
	return Cond{Op: op, L: l, R: r}, nil
}

// parseExpr parses additive arithmetic over primaries.
func (p *sqlParser) parseExpr() (SQLExpr, error) {
	l, err := p.parseExprMul()
	if err != nil {
		return nil, err
	}
	for {
		var op byte
		switch {
		case p.punct("+"):
			op = '+'
		case p.punct("-"):
			op = '-'
		default:
			return l, nil
		}
		r, err := p.parseExprMul()
		if err != nil {
			return nil, err
		}
		l = &ArithExpr{Op: op, L: l, R: r}
	}
}

func (p *sqlParser) parseExprMul() (SQLExpr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.punct("*") {
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &ArithExpr{Op: '*', L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) parsePrimary() (SQLExpr, error) {
	t := p.cur()
	switch t.kind {
	case 'n':
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, err
			}
			return LitExpr{val.DoubleV(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return LitExpr{val.IntV(i)}, nil
	case 's':
		p.next()
		return LitExpr{val.StrV(t.text)}, nil
	case 'p':
		if t.text == "?" {
			p.next()
			e := ParamExpr{Index: p.params}
			p.params++
			return e, nil
		}
		if t.text == "-" {
			p.next()
			sub, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			if l, ok := sub.(LitExpr); ok {
				v := l.V
				if v.K == val.Int {
					v.I = -v.I
				} else {
					v.F = -v.F
				}
				return LitExpr{v}, nil
			}
			return &ArithExpr{Op: '-', L: LitExpr{val.IntV(0)}, R: sub}, nil
		}
	case 'i':
		switch t.text {
		case "TRUE":
			p.next()
			return LitExpr{val.BoolV(true)}, nil
		case "FALSE":
			p.next()
			return LitExpr{val.BoolV(false)}, nil
		case "NULL":
			p.next()
			return LitExpr{val.NullV()}, nil
		}
		return p.parseColRefExpr()
	}
	return nil, fmt.Errorf("unexpected token %q in expression", t.text)
}

func (p *sqlParser) parseColRefExpr() (SQLExpr, error) {
	cr, err := p.parseColRef()
	if err != nil {
		return nil, err
	}
	return cr, nil
}

func (p *sqlParser) parseUpdate() (SQLStmt, error) {
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: tbl}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Sets = append(st.Sets, SetClause{Col: col, Expr: e})
		if !p.punct(",") {
			break
		}
	}
	st.Where, err = p.parseWhere()
	return st, err
}

func (p *sqlParser) parseDelete() (SQLStmt, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: tbl}
	st.Where, err = p.parseWhere()
	return st, err
}
