package sqldb

import (
	"errors"
	"fmt"
	"sync"
)

// This file adds the participant half of two-phase commit to the
// engine. The lock manager already holds strict-2PL locks to commit
// point, so "prepare" needs no new locking machinery: it pins the
// transaction's locks past the statement boundary by detaching the
// transaction from its session into a PreparedTxn handle that only the
// coordinator's decision can resolve. The session is left without a
// transaction, which makes refusal of unilateral abort structural:
// every teardown path that rolls back an abandoned session finds no
// open transaction, and the prepared transaction's locks stay held
// until Commit or Abort arrives (or the dbapi participant's in-doubt
// deadline resolves it).

// ErrTxnResolved reports a 2PC resolution that conflicts with the
// outcome the prepared transaction already reached (e.g. a commit
// decision delivered after the in-doubt deadline presumed abort).
var ErrTxnResolved = errors.New("sqldb: prepared transaction already resolved")

// PreparedTxn is a transaction in the in-doubt window of two-phase
// commit: prepared (all statements applied, all locks held) but not
// yet committed or aborted. Unlike a Session it is safe for concurrent
// use — the coordinator's decision and a participant's in-doubt
// deadline may race to resolve it, and exactly one wins.
type PreparedTxn struct {
	db *DB

	mu        sync.Mutex
	txn       *Txn // nil once resolved
	committed bool // outcome, valid once txn == nil
}

// Prepare2PC enters the prepared state: the session's open transaction
// is detached into the returned handle, keeping every lock it holds
// ("locks held + prepared record" — the write set is in memory, so
// there is no log to force). The session itself is left with no
// transaction: statements on it start a fresh one, and Rollback
// returns ErrNoTransaction rather than aborting the prepared
// transaction — only the coordinator's decision (or the participant's
// in-doubt resolution) can finish it.
func (s *Session) Prepare2PC() (*PreparedTxn, error) {
	if s.txn == nil {
		return nil, ErrNoTransaction
	}
	t := s.txn
	t.prepared = true
	s.txn = nil
	return &PreparedTxn{db: s.db, txn: t}, nil
}

// Commit applies the coordinator's commit decision. Idempotent: a
// duplicate commit of an already-committed transaction returns nil; a
// commit after the transaction was aborted (presumed abort won the
// race) returns ErrTxnResolved.
func (p *PreparedTxn) Commit() error { return p.resolve(true) }

// Abort applies an abort decision (coordinator-ordered or presumed).
// Idempotent like Commit; aborting an already-committed transaction
// returns ErrTxnResolved.
func (p *PreparedTxn) Abort() error { return p.resolve(false) }

// Resolved reports whether the transaction has been finished, and how.
func (p *PreparedTxn) Resolved() (done, committed bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.txn == nil, p.committed
}

func (p *PreparedTxn) resolve(commit bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.txn == nil {
		if p.committed == commit {
			return nil
		}
		return fmt.Errorf("%w (committed=%v)", ErrTxnResolved, p.committed)
	}
	t := p.txn
	p.txn = nil
	p.committed = commit
	t.prepared = false
	if commit {
		p.db.commit(t)
	} else {
		p.db.rollback(t)
	}
	return nil
}
