// Package pyxil implements PyxIL, the Pyxis intermediate language
// (paper §3.1): the checked source program annotated with a placement
// (:APP:/:DB:) for every statement and field, explicit heap
// synchronization operations (sendAPP/sendDB/sendNative, §4.5), and
// the two-queue topological statement reordering that enlarges
// contiguous same-placement runs (§4.4).
package pyxil

import (
	"sort"

	"pyxis/internal/analysis"
	"pyxis/internal/pdg"
	"pyxis/internal/source"
)

// Program is a PyxIL program: source + placements + sync plan.
type Program struct {
	Src   *source.Program
	Place pdg.Placement

	// SyncFields lists, per statement, the fields whose enclosing
	// object part must be shipped to the other server after the
	// statement executes (a remote reader may observe the write).
	SyncFields map[source.NodeID][]*source.Field
	// SyncArrays marks statements whose array-element writes (or array
	// allocations) must be followed by a sendNative of that array.
	SyncArrays map[source.NodeID]bool
	// SyncDefs marks statements defining an array- or table-valued
	// local whose payload must be shipped (the stack carries only the
	// reference).
	SyncDefs map[source.NodeID]bool
}

// Options controls generation.
type Options struct {
	// NoReorder disables the §4.4 statement reordering (ablation).
	NoReorder bool
}

// Generate produces a PyxIL program for one placement. It mutates the
// statement order of the source AST (reordering); callers compile the
// result before generating another placement from the same AST.
func Generate(res *analysis.Result, g *pdg.Graph, place pdg.Placement, opts Options) *Program {
	p := &Program{
		Src:        res.Prog,
		Place:      place,
		SyncFields: map[source.NodeID][]*source.Field{},
		SyncArrays: map[source.NodeID]bool{},
		SyncDefs:   map[source.NodeID]bool{},
	}
	p.planSync(res, g)
	if !opts.NoReorder {
		Reorder(res, g, place)
	}
	return p
}

// FieldLoc returns the placement of a field's authoritative copy.
func (p *Program) FieldLoc(f *source.Field) pdg.Loc { return p.Place.Of(f.ID) }

// StmtLoc returns the placement of a statement.
func (p *Program) StmtLoc(id source.NodeID) pdg.Loc { return p.Place.Of(id) }

// planSync inserts heap synchronization per §4.5: after every
// statement with an outgoing cut data/update dependency, the updated
// heap state is recorded for shipping on the next control transfer.
func (p *Program) planSync(res *analysis.Result, g *pdg.Graph) {
	place := p.Place

	// Field readers, per field node.
	readersOf := map[source.NodeID][]source.NodeID{}
	for _, fd := range res.FieldDeps {
		if !fd.Write {
			readersOf[fd.Field.ID] = append(readersOf[fd.Field.ID], fd.Stmt)
		}
	}
	remoteReader := func(fieldID source.NodeID, from pdg.Loc) bool {
		for _, r := range readersOf[fieldID] {
			if place.Of(r) != from {
				return true
			}
		}
		return false
	}
	for _, fd := range res.FieldDeps {
		if !fd.Write {
			continue
		}
		sLoc := place.Of(fd.Stmt)
		if remoteReader(fd.Field.ID, sLoc) || place.Of(fd.Field.ID) != sLoc {
			already := false
			for _, f := range p.SyncFields[fd.Stmt] {
				if f == fd.Field {
					already = true
					break
				}
			}
			if !already {
				p.SyncFields[fd.Stmt] = append(p.SyncFields[fd.Stmt], fd.Field)
			}
		}
	}
	for id := range p.SyncFields {
		fs := p.SyncFields[id]
		sort.Slice(fs, func(i, j int) bool { return fs[i].ID < fs[j].ID })
	}

	// Array-element dependencies crossing the cut.
	for _, ad := range res.ArrayDeps {
		if place.Of(ad.From) != place.Of(ad.To) {
			p.SyncArrays[ad.From] = true
		}
	}

	// Reference-typed local defs used remotely: ship the payload.
	for _, du := range res.DefUse {
		k := du.Local.Type.K
		if k != source.KArray && k != source.KTable {
			continue
		}
		if g.Nodes[du.From] != nil && g.Nodes[du.From].Kind == pdg.EntryNode {
			continue // parameters arrive via the caller's own sync
		}
		if place.Of(du.From) != place.Of(du.To) {
			p.SyncDefs[du.From] = true
		}
	}
}

// ControlTransfers counts placement changes along each block's
// statement order — the quantity reordering minimizes. (A precise
// count requires execution; this static metric is what the §4.4
// optimization actually reduces.)
func ControlTransfers(prog *source.Program, place pdg.Placement) int {
	transfers := 0
	var doBlock func(b *source.Block)
	doBlock = func(b *source.Block) {
		prev := pdg.Unpinned
		for _, s := range b.Stmts {
			cur := place.Of(s.ID())
			if prev != pdg.Unpinned && cur != prev {
				transfers++
			}
			prev = cur
			switch st := s.(type) {
			case *source.IfStmt:
				doBlock(st.Then)
				if st.Else != nil {
					doBlock(st.Else)
				}
			case *source.WhileStmt:
				doBlock(st.Body)
			case *source.ForEachStmt:
				doBlock(st.Body)
			}
		}
	}
	for _, cl := range prog.Classes {
		for _, m := range cl.Methods {
			doBlock(m.Body)
		}
	}
	return transfers
}

// Reorder permutes the statements of every block to form larger
// same-placement runs while respecting all data, output and anti
// dependencies — the paper's two-queue breadth-first topological sort
// (§4.4). Back edges and interprocedural edges are irrelevant here
// because ordering is per-block.
func Reorder(res *analysis.Result, g *pdg.Graph, place pdg.Placement) {
	// Index dependency edges between statements for quick lookup.
	type pair [2]source.NodeID
	dep := map[pair]bool{}
	for _, e := range g.Edges {
		switch e.Kind {
		case pdg.DataEdge, pdg.OutputEdge, pdg.AntiEdge, pdg.UpdateEdge:
			dep[pair{e.Src, e.Dst}] = true
		}
	}
	// Update edges run field→stmt; writers must also stay ordered with
	// readers of the same field within a block: field-level output/anti
	// pairs were added by the graph builder via effects, so `dep`
	// already covers them.

	var doBlock func(b *source.Block)
	doBlock = func(b *source.Block) {
		n := len(b.Stmts)
		if n > 1 {
			// Build the intra-block DAG. An edge i→j (i before j) exists
			// if any dependency links them in program order.
			succ := make([][]int, n)
			indeg := make([]int, n)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					si, sj := b.Stmts[i].ID(), b.Stmts[j].ID()
					if dep[pair{si, sj}] || dep[pair{sj, si}] {
						// Respect original order regardless of edge
						// direction (reaching defs may report loop-carried
						// use→def pairs).
						succ[i] = append(succ[i], j)
						indeg[j]++
					}
				}
			}
			// Two queues: one per placement. Drain one queue fully,
			// then switch — producing maximal same-placement runs.
			var queues [2][]int // 0 = APP, 1 = DB
			qIdx := func(i int) int {
				if place.Of(b.Stmts[i].ID()) == pdg.DB {
					return 1
				}
				return 0
			}
			for i := 0; i < n; i++ {
				if indeg[i] == 0 {
					q := qIdx(i)
					queues[q] = append(queues[q], i)
				}
			}
			cur := 0
			if len(queues[0]) == 0 {
				cur = 1
			} else if len(queues[1]) > 0 {
				// Start with the placement of the first statement to avoid
				// an extra leading transfer.
				cur = qIdx(0)
			}
			var order []int
			for len(order) < n {
				if len(queues[cur]) == 0 {
					cur = 1 - cur
					if len(queues[cur]) == 0 {
						break // cycle: fall back to original order
					}
				}
				i := queues[cur][0]
				queues[cur] = queues[cur][1:]
				order = append(order, i)
				for _, j := range succ[i] {
					indeg[j]--
					if indeg[j] == 0 {
						queues[qIdx(j)] = append(queues[qIdx(j)], j)
					}
				}
			}
			if len(order) == n {
				newStmts := make([]source.Stmt, n)
				for k, i := range order {
					newStmts[k] = b.Stmts[i]
				}
				b.Stmts = newStmts
			}
		}
		for _, s := range b.Stmts {
			switch st := s.(type) {
			case *source.IfStmt:
				doBlock(st.Then)
				if st.Else != nil {
					doBlock(st.Else)
				}
			case *source.WhileStmt:
				doBlock(st.Body)
			case *source.ForEachStmt:
				doBlock(st.Body)
			}
		}
	}
	for _, cl := range res.Prog.Classes {
		for _, m := range cl.Methods {
			doBlock(m.Body)
		}
	}
}

// String renders the PyxIL program in the paper's Fig. 3 style:
// :APP:/:DB: placement prefixes and explicit sync operations.
func (p *Program) String() string {
	prefix := func(s source.Stmt) string {
		return ":" + p.Place.Of(s.ID()).String() + ": "
	}
	suffix := func(s source.Stmt) []string {
		var out []string
		loc := ":" + p.Place.Of(s.ID()).String() + ": "
		for _, f := range p.SyncFields[s.ID()] {
			if p.FieldLoc(f) == pdg.App {
				out = append(out, loc+"sendAPP(this);  // "+f.QName())
			} else {
				out = append(out, loc+"sendDB(this);  // "+f.QName())
			}
		}
		if p.SyncArrays[s.ID()] || p.SyncDefs[s.ID()] {
			out = append(out, loc+"sendNative(...);")
		}
		return out
	}
	return source.PrintAnnotated(p.Src, prefix, suffix)
}
