package pyxil

import (
	"math/rand"
	"strings"
	"testing"

	"pyxis/internal/analysis"
	"pyxis/internal/pdg"
	"pyxis/internal/profile"
	"pyxis/internal/source"
)

const reorderSrc = `
class C {
    int f;
    C() { f = 0; }
    entry int work(int a, int b) {
        int x = a + 1;
        int y = b + 2;
        int z = x * y;
        f = z;
        int w = f + x;
        return w;
    }
}
`

func setupPlacement(t *testing.T, src string, dbLocals []string) (*analysis.Result, *pdg.Graph, pdg.Placement) {
	t.Helper()
	prog, err := source.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(prog)
	g := pdg.Build(res, profile.New(), pdg.Options{})
	place := pdg.Placement{}
	for id := range g.Nodes {
		place[id] = pdg.App
	}
	place[g.DBCodeID] = pdg.DB
	for id, s := range prog.Stmts {
		if d, ok := s.(*source.DeclStmt); ok {
			for _, name := range dbLocals {
				if d.Local.Name == name {
					place[id] = pdg.DB
				}
			}
		}
	}
	return res, g, place
}

// TestReorderRespectsDependencies: after reordering, every def still
// precedes its uses within each block.
func TestReorderRespectsDependencies(t *testing.T) {
	res, g, place := setupPlacement(t, reorderSrc, []string{"x", "z"})
	Reorder(res, g, place)
	m := res.Prog.Method("C", "work")
	pos := map[source.NodeID]int{}
	for i, s := range m.Body.Stmts {
		pos[s.ID()] = i
	}
	for _, du := range res.DefUse {
		pf, okF := pos[du.From]
		pt, okT := pos[du.To]
		if okF && okT && pf > pt {
			t.Errorf("def of %s (stmt %d) reordered after its use (stmt %d)", du.Local.Name, du.From, du.To)
		}
	}
}

// TestReorderGroupsPlacements: independent interleaved statements end
// up grouped by placement.
func TestReorderGroupsPlacements(t *testing.T) {
	src := `
class C {
    C() { }
    entry int go_(int a) {
        int p1 = a + 1;
        int d1 = a + 2;
        int p2 = a + 3;
        int d2 = a + 4;
        int p3 = a + 5;
        int d3 = a + 6;
        return p1 + d1 + p2 + d2 + p3 + d3;
    }
}`
	res, g, place := setupPlacement(t, src, []string{"d1", "d2", "d3"})
	before := ControlTransfers(res.Prog, place)
	Reorder(res, g, place)
	after := ControlTransfers(res.Prog, place)
	if after >= before {
		t.Errorf("reorder should cut transfers: before=%d after=%d", before, after)
	}
	if after > 2 {
		t.Errorf("after = %d, want <= 2", after)
	}
}

// TestReorderIsPermutation: reordering never loses or duplicates
// statements for random placements.
func TestReorderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		prog, err := source.Load(reorderSrc)
		if err != nil {
			t.Fatal(err)
		}
		res := analysis.Run(prog)
		g := pdg.Build(res, profile.New(), pdg.Options{})
		place := pdg.Placement{}
		for id := range g.Nodes {
			if rng.Intn(2) == 0 {
				place[id] = pdg.App
			} else {
				place[id] = pdg.DB
			}
		}
		place[g.DBCodeID] = pdg.DB
		m := prog.Method("C", "work")
		var beforeIDs []source.NodeID
		source.WalkMethodStmts(m, func(s source.Stmt) bool {
			beforeIDs = append(beforeIDs, s.ID())
			return true
		})
		Reorder(res, g, place)
		seen := map[source.NodeID]bool{}
		count := 0
		source.WalkMethodStmts(m, func(s source.Stmt) bool {
			if seen[s.ID()] {
				t.Fatalf("duplicate stmt %d after reorder", s.ID())
			}
			seen[s.ID()] = true
			count++
			return true
		})
		if count != len(beforeIDs) {
			t.Fatalf("stmt count changed: %d -> %d", len(beforeIDs), count)
		}
	}
}

func TestSyncPlanFieldPlacement(t *testing.T) {
	res, g, place := setupPlacement(t, reorderSrc, nil)
	// Put `f = z` on DB while the field f stays APP; the write must
	// trigger a sync of the APP part.
	var fAssign source.NodeID
	for id, s := range res.Prog.Stmts {
		if as, ok := s.(*source.AssignStmt); ok {
			fe, isField := as.LHS.(*source.FieldExpr)
			rv, isVar := as.RHS.(*source.VarExpr)
			if isField && fe.Field.Name == "f" && isVar && rv.Local.Name == "z" {
				fAssign = id
			}
		}
	}
	place[fAssign] = pdg.DB
	p := Generate(res, g, place, Options{NoReorder: true})
	if len(p.SyncFields[fAssign]) == 0 {
		t.Error("remote field write must be synced")
	}
	out := p.String()
	if !strings.Contains(out, "send") {
		t.Errorf("PyxIL render missing sync op:\n%s", out)
	}
	if !strings.Contains(out, ":DB: f = z;") {
		t.Errorf("PyxIL render missing placement:\n%s", out)
	}
}
