package compile

import "fmt"

// FuseStats reports what the superblock pass did.
type FuseStats struct {
	BlocksBefore int
	BlocksAfter  int
	Merged       int // blocks absorbed into a predecessor
	Threaded     int // edges forwarded past empty goto blocks
	Dropped      int // unreachable blocks removed
}

func (s FuseStats) String() string {
	return fmt.Sprintf("fuse: %d→%d blocks (merged=%d threaded=%d dropped=%d)",
		s.BlocksBefore, s.BlocksAfter, s.Merged, s.Threaded, s.Dropped)
}

// Fuse is the superblock pass (run once, after Compile, on both
// peers): it merges chains of same-placement blocks linked by an
// unconditional TGoto whose target has exactly one predecessor, drops
// blocks that became (or always were) unreachable, renumbers the
// survivors densely, and computes per-block live-in slot sets.
//
// The compiler emits many tiny blocks — dead continuations after
// return/break, if/loop scaffolding, call continuations — and
// Session.Run pays a block fetch, a placement check and a terminator
// switch for each. Fusing straight-line regions makes that overhead
// per-region instead of per-block, and, because only block boundaries
// are transfer-eligible, it can only remove control-transfer
// opportunities, never add them: a fused edge was an unconditional
// same-side goto, which never transferred.
func Fuse(p *Program) FuseStats {
	stats := FuseStats{BlocksBefore: len(p.Blocks)}

	// Jump threading: forward every edge past empty unconditional-goto
	// blocks (loop exits and placement scaffolding that ended up with
	// no code), so the runtime never dispatches a block that does
	// nothing but name the next one. Threading past a different-loc
	// empty block can only remove control transfers, never add them:
	// any transfer the skipped hop performed is subsumed by the
	// (at most one) transfer of the direct edge.
	resolve := func(id BlockID) BlockID {
		for hops := 0; hops < len(p.Blocks); hops++ {
			b := p.Blocks[id]
			if len(b.Code) != 0 || b.Term.Kind != TGoto || b.Term.Target == id {
				break
			}
			id = b.Term.Target
			stats.Threaded++
		}
		return id
	}
	for _, m := range p.MethodList {
		m.Entry = resolve(m.Entry)
	}
	for _, b := range p.Blocks {
		switch b.Term.Kind {
		case TGoto:
			b.Term.Target = resolve(b.Term.Target)
		case TIf:
			b.Term.Then = resolve(b.Term.Then)
			b.Term.Else = resolve(b.Term.Else)
		case TCall:
			b.Term.Cont = resolve(b.Term.Cont)
		}
	}

	// Reachability from method entries, so the dead continuations the
	// compiler emits after return/break (and the blocks threading just
	// bypassed) neither survive nor inflate predecessor counts.
	reach := make([]bool, len(p.Blocks))
	var walk func(id BlockID)
	walk = func(id BlockID) {
		if reach[id] {
			return
		}
		reach[id] = true
		b := p.Blocks[id]
		switch b.Term.Kind {
		case TGoto:
			walk(b.Term.Target)
		case TIf:
			walk(b.Term.Then)
			walk(b.Term.Else)
		case TCall:
			walk(b.Term.Cont)
		}
	}
	for _, m := range p.MethodList {
		walk(m.Entry)
	}

	// Predecessor counts over live blocks only. Method entries are
	// pinned (biased +2) so they are never absorbed: the runtime jumps
	// to them by MethodInfo and they must survive as block starts.
	refs := make([]int, len(p.Blocks))
	for _, m := range p.MethodList {
		refs[m.Entry] += 2
	}
	for _, b := range p.Blocks {
		if !reach[b.ID] {
			continue
		}
		switch b.Term.Kind {
		case TGoto:
			refs[b.Term.Target]++
		case TIf:
			refs[b.Term.Then]++
			refs[b.Term.Else]++
		case TCall:
			refs[b.Term.Cont]++
		}
	}

	// Merge goto chains: a same-placement target with exactly one
	// predecessor belongs to the straight-line region of that
	// predecessor, and an *empty* same-placement target costs nothing
	// to absorb (only its terminator is copied) however many
	// predecessors it has. Absorbing a single-pred t into b leaves t
	// dead; the loop keeps going so a whole a→b→c chain collapses in
	// one visit.
	dead := make([]bool, len(p.Blocks))
	for _, b := range p.Blocks {
		if dead[b.ID] || !reach[b.ID] {
			continue
		}
		for hops := 0; b.Term.Kind == TGoto && hops < len(p.Blocks); hops++ {
			t := p.Blocks[b.Term.Target]
			if t.ID == b.ID || t.Loc != b.Loc || dead[t.ID] {
				break
			}
			if refs[t.ID] == 1 {
				b.Code = append(b.Code, t.Code...)
				b.Term = t.Term
				dead[t.ID] = true
				stats.Merged++
			} else if len(t.Code) == 0 {
				// Shared empty block (e.g. a pinned entry that only
				// returns): take its terminator, leave it alive for
				// the other predecessors, and keep refcounts honest —
				// t's successors just gained a predecessor.
				b.Term = t.Term
				refs[t.ID]--
				switch t.Term.Kind {
				case TGoto:
					refs[t.Term.Target]++
				case TIf:
					refs[t.Term.Then]++
					refs[t.Term.Else]++
				case TCall:
					refs[t.Term.Cont]++
				}
				stats.Threaded++
			} else {
				break
			}
		}
	}

	// Compact and renumber.
	remap := make([]BlockID, len(p.Blocks))
	var out []*Block
	for _, b := range p.Blocks {
		if !reach[b.ID] || dead[b.ID] {
			remap[b.ID] = NoBlock
			if !dead[b.ID] {
				stats.Dropped++
			}
			continue
		}
		remap[b.ID] = BlockID(len(out))
		out = append(out, b)
	}
	for _, m := range p.MethodList {
		m.Entry = remap[m.Entry]
	}
	for _, b := range out {
		b.ID = remap[b.ID]
		switch b.Term.Kind {
		case TGoto:
			b.Term.Target = remap[b.Term.Target]
		case TIf:
			b.Term.Then = remap[b.Term.Then]
			b.Term.Else = remap[b.Term.Else]
		case TCall:
			b.Term.Cont = remap[b.Term.Cont]
		}
	}
	p.Blocks = out
	p.Fused = true
	stats.BlocksAfter = len(out)

	computeLiveness(p)
	return stats
}

// computeLiveness runs a backward slot-liveness dataflow per method
// and stores the live-in bitset on each block. Transfer encoding uses
// it to ship only slots the resuming side can still read.
func computeLiveness(p *Program) {
	for _, m := range p.MethodList {
		blocks := methodBlocks(p, m)
		nw := (m.NSlots + 63) / 64
		if nw == 0 {
			nw = 1
		}
		for _, b := range blocks {
			b.LiveIn = make([]uint64, nw)
		}
		for changed := true; changed; {
			changed = false
			// Reverse emission order approximates reverse topological
			// order, so most facts converge in the first sweep.
			for i := len(blocks) - 1; i >= 0; i-- {
				b := blocks[i]
				live := make([]uint64, nw)
				switch b.Term.Kind {
				case TGoto:
					orInto(live, p.Blocks[b.Term.Target].LiveIn)
				case TIf:
					orInto(live, p.Blocks[b.Term.Then].LiveIn)
					orInto(live, p.Blocks[b.Term.Else].LiveIn)
					setBit(live, b.Term.Cond)
				case TCall:
					orInto(live, p.Blocks[b.Term.Cont].LiveIn)
					clearBit(live, b.Term.RetSlot)
					for _, a := range b.Term.Args {
						setBit(live, a)
					}
				case TRet:
					if b.Term.Val >= 0 {
						setBit(live, b.Term.Val)
					}
				}
				for j := len(b.Code) - 1; j >= 0; j-- {
					stepLiveness(live, &b.Code[j])
				}
				if !wordsEqual(live, b.LiveIn) {
					copy(b.LiveIn, live)
					changed = true
				}
			}
		}
	}
}

// stepLiveness transfers live facts backward across one instruction:
// kill the defined slot, then gen the used ones.
func stepLiveness(live []uint64, in *Instr) {
	switch in.Op {
	case OpConst, OpNewObj:
		clearBit(live, in.A)
	case OpMove, OpUn, OpConv, OpGetField, OpLen, OpSha1, OpStr, OpTblRows, OpNewArr:
		clearBit(live, in.A)
		setBit(live, in.B)
	case OpBin, OpGetIdx:
		clearBit(live, in.A)
		setBit(live, in.B)
		setBit(live, in.C)
	case OpSetField:
		setBit(live, in.A)
		setBit(live, in.B)
	case OpSetIdx:
		setBit(live, in.A)
		setBit(live, in.B)
		setBit(live, in.C)
	case OpDBQuery, OpDBExec:
		clearBit(live, in.A)
		for _, a := range in.Args {
			setBit(live, a)
		}
	case OpTblGet:
		clearBit(live, in.A)
		setBit(live, in.B)
		setBit(live, in.C)
		for _, a := range in.Args {
			setBit(live, a)
		}
	case OpPrint:
		for _, a := range in.Args {
			setBit(live, a)
		}
	case OpSendPart, OpSendNative:
		setBit(live, in.A)
	case OpDBBegin, OpDBCommit, OpDBRollback:
		// no slot traffic
	}
}

// methodBlocks collects the blocks reachable from m's entry without
// entering callees (TCall continues in the same frame at Cont).
func methodBlocks(p *Program, m *MethodInfo) []*Block {
	seen := map[BlockID]bool{}
	var out []*Block
	var walk func(id BlockID)
	walk = func(id BlockID) {
		if id == NoBlock || seen[id] {
			return
		}
		seen[id] = true
		b := p.Blocks[id]
		out = append(out, b)
		switch b.Term.Kind {
		case TGoto:
			walk(b.Term.Target)
		case TIf:
			walk(b.Term.Then)
			walk(b.Term.Else)
		case TCall:
			walk(b.Term.Cont)
		}
	}
	walk(m.Entry)
	return out
}

func setBit(w []uint64, s int) {
	if s >= 0 && s>>6 < len(w) {
		w[s>>6] |= 1 << (uint(s) & 63)
	}
}

func clearBit(w []uint64, s int) {
	if s >= 0 && s>>6 < len(w) {
		w[s>>6] &^= 1 << (uint(s) & 63)
	}
}

func orInto(dst, src []uint64) {
	for i := range src {
		dst[i] |= src[i]
	}
}

func wordsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
