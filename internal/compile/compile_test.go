package compile

import (
	"strings"
	"testing"

	"pyxis/internal/analysis"
	"pyxis/internal/pdg"
	"pyxis/internal/profile"
	"pyxis/internal/pyxil"
	"pyxis/internal/source"
)

const src = `
class P {
    int a;
    double b;

    P() {
        a = 1;
        b = 2.5;
    }

    entry int work(int n) {
        int s = 0;
        while (s < n) {
            s += step(s);
        }
        if (s > 100) {
            return 100;
        }
        return s;
    }

    int step(int x) {
        return x + 1;
    }
}
`

func compileSplit(t *testing.T) *Program {
	t.Helper()
	prog, err := source.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(prog)
	g := pdg.Build(res, profile.New(), pdg.Options{})
	place := pdg.Placement{}
	for id := range g.Nodes {
		place[id] = pdg.App
	}
	place[g.DBCodeID] = pdg.DB
	// Field b and method step on the DB.
	for id, f := range prog.Fields {
		if f.Name == "b" {
			place[id] = pdg.DB
		}
	}
	m := prog.Method("P", "step")
	place[m.EntryID] = pdg.DB
	source.WalkMethodStmts(m, func(s source.Stmt) bool {
		place[s.ID()] = pdg.DB
		return true
	})
	px := pyxil.Generate(res, g, place, pyxil.Options{})
	compiled, err := Compile(px)
	if err != nil {
		t.Fatal(err)
	}
	return compiled
}

func TestClassSplitting(t *testing.T) {
	p := compileSplit(t)
	ci := p.Classes["P"]
	if ci == nil {
		t.Fatal("class P missing")
	}
	if ci.NumApp != 1 || ci.NumDB != 1 {
		t.Fatalf("part sizes = %d/%d, want 1/1", ci.NumApp, ci.NumDB)
	}
	if ci.Fields[0].Loc != pdg.App || ci.Fields[1].Loc != pdg.DB {
		t.Errorf("field placements wrong: %v %v", ci.Fields[0].Loc, ci.Fields[1].Loc)
	}
	zero := ci.ZeroPart(pdg.DB)
	if len(zero) != 1 || zero[0].F != 0 {
		t.Errorf("zero DB part = %v", zero)
	}
	if ci.Ctor == nil {
		t.Error("constructor missing")
	}
}

func TestBlockInvariants(t *testing.T) {
	p := compileSplit(t)
	if len(p.Blocks) == 0 {
		t.Fatal("no blocks")
	}
	appB, dbB := 0, 0
	for _, b := range p.Blocks {
		if int(b.ID) >= len(p.Blocks) {
			t.Fatalf("block id out of range: %d", b.ID)
		}
		if b.Loc == pdg.DB {
			dbB++
		} else {
			appB++
		}
		// Terminator targets must be valid blocks.
		check := func(id BlockID) {
			if id != NoBlock && (int(id) < 0 || int(id) >= len(p.Blocks)) {
				t.Fatalf("block %d: bad target %d", b.ID, id)
			}
		}
		switch b.Term.Kind {
		case TGoto:
			check(b.Term.Target)
		case TIf:
			check(b.Term.Then)
			check(b.Term.Else)
		case TCall:
			check(b.Term.Cont)
			if b.Term.Method == nil {
				t.Fatalf("block %d: call without method", b.ID)
			}
			// Arguments must fit in the callee frame.
			if len(b.Term.Args) > b.Term.Method.NSlots {
				t.Fatalf("block %d: %d args into %d slots", b.ID, len(b.Term.Args), b.Term.Method.NSlots)
			}
		}
	}
	if appB == 0 || dbB == 0 {
		t.Errorf("split program should have blocks on both sides: app=%d db=%d", appB, dbB)
	}

	// Every method entry block exists and slots cover locals.
	for _, m := range p.MethodList {
		if int(m.Entry) >= len(p.Blocks) {
			t.Fatalf("%s: bad entry block", m.QName)
		}
		if m.NSlots < 1+len(m.Params) {
			t.Fatalf("%s: %d slots < 1+%d params", m.QName, m.NSlots, len(m.Params))
		}
	}
	// All instruction slot operands stay within their method frames —
	// checked dynamically by the runtime tests; here we check statically
	// for the entry method.
	work := p.Method("P.work")
	seen := map[BlockID]bool{}
	var walk func(id BlockID)
	walk = func(id BlockID) {
		if id == NoBlock || seen[id] {
			return
		}
		seen[id] = true
		b := p.Block(id)
		for _, in := range b.Code {
			for _, slot := range []int{in.A, in.B, in.C} {
				if slot >= work.NSlots {
					t.Fatalf("block %d: slot %d >= frame size %d", id, slot, work.NSlots)
				}
			}
		}
		switch b.Term.Kind {
		case TGoto:
			walk(b.Term.Target)
		case TIf:
			walk(b.Term.Then)
			walk(b.Term.Else)
		case TCall:
			walk(b.Term.Cont)
		}
	}
	walk(work.Entry)
}

func TestDisassembleAndStats(t *testing.T) {
	p := compileSplit(t)
	dis := p.Disassemble()
	for _, want := range []string{"method P.work", "call P.step", "ret"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
	if !strings.Contains(p.Stats(), "blocks=") {
		t.Error("stats malformed")
	}
}
