// Package compile translates PyxIL programs into execution blocks
// (paper §5): straight-line instruction sequences, each placed on one
// server, that end by naming the next block — continuation-passing
// style, exactly the Fig. 7 code shape. Local variables become
// explicit stack slots so the runtime fully controls program state and
// can suspend at any placement boundary.
package compile

import (
	"fmt"
	"strings"

	"pyxis/internal/pdg"
	"pyxis/internal/source"
	"pyxis/internal/val"
)

// BlockID identifies an execution block.
type BlockID int32

// NoBlock is the nil block id.
const NoBlock BlockID = -1

// Op enumerates block instructions.
type Op uint8

const (
	OpConst    Op = iota // slots[A] = Lit
	OpMove               // slots[A] = slots[B]
	OpBin                // slots[A] = slots[B] <Sub:BinOp> slots[C]
	OpUn                 // slots[A] = <Sub:UnOp> slots[B]
	OpConv               // slots[A] = double(slots[B])
	OpNewObj             // slots[A] = new Class
	OpNewArr             // slots[A] = new [slots[B]] with zero Lit
	OpGetField           // slots[A] = slots[B].Field
	OpSetField           // slots[A].Field = slots[B]
	OpGetIdx             // slots[A] = slots[B][slots[C]]
	OpSetIdx             // slots[A][slots[B]] = slots[C]
	OpLen                // slots[A] = len(slots[B])
	OpDBQuery            // slots[A] = db.query(SQL, slots[Args...])
	OpDBExec             // slots[A] = db.update(SQL, slots[Args...])
	OpDBBegin
	OpDBCommit
	OpDBRollback
	OpPrint      // print slots[Args...]
	OpSha1       // slots[A] = sha1(slots[B])
	OpStr        // slots[A] = str(slots[B])
	OpTblRows    // slots[A] = rows(slots[B])
	OpTblGet     // slots[A] = slots[B].get(slots[C], slots[Args[0]]) as Sub(Builtin)
	OpSendPart   // mark object slots[A]'s Sub(Loc) part for sync
	OpSendNative // mark array/table slots[A] for sync (no-op on scalars)
)

var opNames = map[Op]string{
	OpConst: "const", OpMove: "move", OpBin: "bin", OpUn: "un", OpConv: "conv",
	OpNewObj: "newobj", OpNewArr: "newarr", OpGetField: "getfield",
	OpSetField: "setfield", OpGetIdx: "getidx", OpSetIdx: "setidx", OpLen: "len",
	OpDBQuery: "dbquery", OpDBExec: "dbexec", OpDBBegin: "dbbegin",
	OpDBCommit: "dbcommit", OpDBRollback: "dbrollback", OpPrint: "print",
	OpSha1: "sha1", OpStr: "str", OpTblRows: "tblrows", OpTblGet: "tblget",
	OpSendPart: "sendpart", OpSendNative: "sendnative",
}

// Instr is one executable instruction.
type Instr struct {
	Op      Op
	A, B, C int
	Sub     uint8
	Lit     val.Value
	Class   *ClassInfo
	Field   *FieldRef
	SQL     string
	// SQLID indexes Program.SQLTable for OpDBQuery/OpDBExec: the
	// compile-time statement number carried on the prepared dbapi wire
	// instead of the SQL text. Only meaningful when
	// Program.SQLTable[SQLID] == SQL (hand-built instructions leave it
	// zero and are executed over the string path).
	SQLID int32
	Args  []int
}

// TermKind enumerates block terminators.
type TermKind uint8

const (
	TGoto TermKind = iota
	TIf
	TCall
	TRet
)

// Term ends a block. For TCall, the runtime pushes a frame for Method,
// copies caller slots Args into callee slots 0..len(Args)-1 (slot 0 is
// the receiver), and resumes at Cont with the return value stored in
// RetSlot when the callee returns. For TRet, Val is the returned slot
// (-1 = zero value of the method's return type).
type Term struct {
	Kind    TermKind
	Target  BlockID // TGoto
	Cond    int     // TIf condition slot
	Then    BlockID // TIf
	Else    BlockID // TIf
	Method  *MethodInfo
	Args    []int
	RetSlot int
	Cont    BlockID
	Val     int // TRet
}

// Block is one execution block with a fixed placement.
type Block struct {
	ID   BlockID
	Loc  pdg.Loc
	Code []Instr
	Term Term
	// LiveIn is the frame-slot liveness bitset at block entry (word
	// i>>6, bit i&63), computed by Fuse. Control transfers that resume
	// at this block need only ship the live slots; nil means unknown
	// (ship everything).
	LiveIn []uint64
}

// LiveAt reports whether slot s is live at block entry. A nil bitset
// (liveness not computed) treats every slot as live.
func (b *Block) LiveAt(s int) bool {
	if b.LiveIn == nil {
		return true
	}
	w := s >> 6
	return w < len(b.LiveIn) && b.LiveIn[w]&(1<<(uint(s)&63)) != 0
}

// FieldRef resolves a source field to its split-class location: which
// part (APP or DB) and the index within that part.
type FieldRef struct {
	Class   *ClassInfo
	Name    string
	Loc     pdg.Loc
	PartIdx int
	Type    source.Type
}

// ClassInfo is the compiled form of a class: fields split into APP and
// DB parts per the placement (paper Fig. 6).
type ClassInfo struct {
	Name string
	// Fields is indexed by the source field Index.
	Fields []*FieldRef
	// NumApp/NumDB are the part sizes.
	NumApp, NumDB int
	// Ctor, if any.
	Ctor *MethodInfo
}

// PartLen returns the number of fields in the given part.
func (c *ClassInfo) PartLen(loc pdg.Loc) int {
	if loc == pdg.DB {
		return c.NumDB
	}
	return c.NumApp
}

// ZeroPart builds a zeroed part value array.
func (c *ClassInfo) ZeroPart(loc pdg.Loc) []val.Value {
	out := make([]val.Value, c.PartLen(loc))
	for _, f := range c.Fields {
		if f.Loc == loc {
			out[f.PartIdx] = f.Type.Zero()
		}
	}
	return out
}

// MethodInfo is the compiled form of a method.
type MethodInfo struct {
	QName        string
	Name         string
	Class        *ClassInfo
	Entry        BlockID
	NSlots       int // frame size: 1 (this) + locals + temps
	Params       []source.Type
	Ret          source.Type
	IsEntryPoint bool
	// Idx is the method's position in MethodList. Both peers compile
	// the same program, so transfer frames name methods by this index
	// instead of the qname string.
	Idx int
}

// Program is a compiled, placed program.
type Program struct {
	Blocks  []*Block
	Classes map[string]*ClassInfo
	Methods map[string]*MethodInfo
	// MethodList preserves declaration order.
	MethodList []*MethodInfo
	// SQLTable numbers every distinct SQL string in the program; the
	// prepared dbapi wire sends SQLTable indices instead of text.
	SQLTable []string
	// Fused is set once the superblock fusion pass has run.
	Fused bool
}

// Block returns a block by id.
func (p *Program) Block(id BlockID) *Block { return p.Blocks[id] }

// Method resolves "Class.method".
func (p *Program) Method(qname string) *MethodInfo { return p.Methods[qname] }

// Stats summarizes the compiled program.
func (p *Program) Stats() string {
	app, db := 0, 0
	instrs := 0
	for _, b := range p.Blocks {
		instrs += len(b.Code)
		if b.Loc == pdg.DB {
			db++
		} else {
			app++
		}
	}
	return fmt.Sprintf("blocks=%d (app=%d db=%d) instrs=%d methods=%d classes=%d",
		len(p.Blocks), app, db, instrs, len(p.Methods), len(p.Classes))
}

// Disassemble renders the block program for debugging and for the
// pyxisc -blocks output.
func (p *Program) Disassemble() string {
	var b strings.Builder
	for _, m := range p.MethodList {
		fmt.Fprintf(&b, "method %s: idx=%d entry=b%d slots=%d\n", m.QName, m.Idx, m.Entry, m.NSlots)
	}
	for i, sql := range p.SQLTable {
		fmt.Fprintf(&b, "stmt #%d: %q\n", i, sql)
	}
	for _, blk := range p.Blocks {
		p.disasmBlock(&b, blk)
	}
	return b.String()
}

// DisassembleBlock renders a single block — the context line the
// verifier's diagnostics print so a finding reads without the full
// program dump.
func (p *Program) DisassembleBlock(id BlockID) string {
	if id < 0 || int(id) >= len(p.Blocks) {
		return fmt.Sprintf("b%d <out of range>\n", id)
	}
	var b strings.Builder
	p.disasmBlock(&b, p.Blocks[id])
	return b.String()
}

func (p *Program) disasmBlock(b *strings.Builder, blk *Block) {
	fmt.Fprintf(b, "b%d [%s]:", blk.ID, blk.Loc)
	if blk.LiveIn != nil {
		b.WriteString(" live-in={")
		sep := ""
		for s := 0; s < len(blk.LiveIn)*64; s++ {
			if blk.LiveAt(s) {
				fmt.Fprintf(b, "%s%d", sep, s)
				sep = ","
			}
		}
		b.WriteString("}")
	}
	b.WriteString("\n")
	for _, in := range blk.Code {
		fmt.Fprintf(b, "  %s", opNames[in.Op])
		fmt.Fprintf(b, " A=%d B=%d C=%d", in.A, in.B, in.C)
		if in.Field != nil {
			fmt.Fprintf(b, " field=%s.%s", in.Field.Class.Name, in.Field.Name)
		}
		if in.SQL != "" || in.Op == OpDBQuery || in.Op == OpDBExec {
			// The prepared wire executes SQLTable[SQLID], not the copy on
			// the instruction — print the table's text (and flag any
			// divergence, which the verifier rejects as corruption).
			switch {
			case int(in.SQLID) >= 0 && int(in.SQLID) < len(p.SQLTable) && p.SQLTable[in.SQLID] == in.SQL:
				fmt.Fprintf(b, " sql=#%d:%q", in.SQLID, p.SQLTable[in.SQLID])
			case int(in.SQLID) >= 0 && int(in.SQLID) < len(p.SQLTable):
				fmt.Fprintf(b, " sql=#%d:%q (instr carries %q — MISMATCH)", in.SQLID, p.SQLTable[in.SQLID], in.SQL)
			default:
				fmt.Fprintf(b, " sql=#%d:%q (id unresolved in SQLTable)", in.SQLID, in.SQL)
			}
		}
		if len(in.Args) > 0 {
			fmt.Fprintf(b, " args=%v", in.Args)
		}
		b.WriteString("\n")
	}
	switch blk.Term.Kind {
	case TGoto:
		fmt.Fprintf(b, "  goto b%d\n", blk.Term.Target)
	case TIf:
		fmt.Fprintf(b, "  if s%d then b%d else b%d\n", blk.Term.Cond, blk.Term.Then, blk.Term.Else)
	case TCall:
		fmt.Fprintf(b, "  call %s args=%v ret=s%d cont=b%d\n", blk.Term.Method.QName, blk.Term.Args, blk.Term.RetSlot, blk.Term.Cont)
	case TRet:
		fmt.Fprintf(b, "  ret s%d\n", blk.Term.Val)
	}
}
