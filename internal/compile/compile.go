package compile

import (
	"fmt"

	"pyxis/internal/pdg"
	"pyxis/internal/pyxil"
	"pyxis/internal/source"
	"pyxis/internal/val"
)

// Option configures Compile.
type Option func(*compileOpts)

type compileOpts struct{ noVerify bool }

// NoVerify disables the post-compile verifier for one compilation.
// pyxis.System.NoVerify threads through here; benches that compile in
// a hot loop are the intended users.
func NoVerify() Option { return func(o *compileOpts) { o.noVerify = true } }

// verifier is the registered whole-program checker. internal/verify
// installs itself here from init — a direct import would cycle, since
// the verifier is written against this package's types.
var verifier func(*Program) error

// RegisterVerifier installs the checker Compile runs by default on
// every compiled program (unless NoVerify is passed).
func RegisterVerifier(fn func(*Program) error) { verifier = fn }

// Compile lowers a PyxIL program into execution blocks.
func Compile(p *pyxil.Program, opts ...Option) (*Program, error) {
	var o compileOpts
	for _, opt := range opts {
		opt(&o)
	}
	c := &compiler{
		px:     p,
		prog:   &Program{Classes: map[string]*ClassInfo{}, Methods: map[string]*MethodInfo{}},
		sqlIDs: map[string]int32{},
	}
	// Split every class into APP and DB parts (Fig. 6).
	for _, cl := range p.Src.Classes {
		ci := &ClassInfo{Name: cl.Name}
		for _, f := range cl.Fields {
			loc := p.FieldLoc(f)
			fr := &FieldRef{Class: ci, Name: f.Name, Loc: loc, Type: f.Type}
			if loc == pdg.DB {
				fr.PartIdx = ci.NumDB
				ci.NumDB++
			} else {
				fr.Loc = pdg.App
				fr.PartIdx = ci.NumApp
				ci.NumApp++
			}
			ci.Fields = append(ci.Fields, fr)
		}
		c.prog.Classes[cl.Name] = ci
	}
	// Method shells first so calls can reference them.
	for _, cl := range p.Src.Classes {
		ci := c.prog.Classes[cl.Name]
		for _, m := range cl.Methods {
			mi := &MethodInfo{
				QName: m.QName(), Name: m.Name, Class: ci, Ret: m.Ret,
				IsEntryPoint: m.Entry,
			}
			for _, prm := range m.Params {
				mi.Params = append(mi.Params, prm.Type)
			}
			if m.IsCtor {
				ci.Ctor = mi
			}
			mi.Idx = len(c.prog.MethodList)
			c.prog.Methods[m.QName()] = mi
			c.prog.MethodList = append(c.prog.MethodList, mi)
		}
	}
	for _, cl := range p.Src.Classes {
		for _, m := range cl.Methods {
			if err := c.compileMethod(m); err != nil {
				return nil, err
			}
		}
	}
	if !o.noVerify && verifier != nil {
		if err := verifier(c.prog); err != nil {
			return nil, fmt.Errorf("compile: %w", err)
		}
	}
	return c.prog, nil
}

type compiler struct {
	px     *pyxil.Program
	prog   *Program
	sqlIDs map[string]int32

	method  *source.Method
	info    *MethodInfo
	cur     *Block
	nslots  int
	curStmt source.NodeID // statement being compiled (sync-plan lookups)
	// pendingBreaks stacks, per enclosing loop, the blocks that end in
	// `break` and await patching to the loop's exit block.
	pendingBreaks [][]*Block
}

func (c *compiler) newBlock(loc pdg.Loc) *Block {
	if loc == pdg.Unpinned {
		loc = pdg.App
	}
	b := &Block{ID: BlockID(len(c.prog.Blocks)), Loc: loc, Term: Term{Kind: TRet, Val: -1}}
	c.prog.Blocks = append(c.prog.Blocks, b)
	return b
}

func (c *compiler) temp() int {
	s := c.nslots
	c.nslots++
	return s
}

// slotOf maps a source local to its frame slot (0 is the receiver).
func slotOf(l *source.Local) int { return l.Slot + 1 }

func (c *compiler) emit(in Instr) { c.cur.Code = append(c.cur.Code, in) }

// ensureLoc switches the current block to the given placement,
// inserting a control transfer boundary if needed.
func (c *compiler) ensureLoc(loc pdg.Loc) {
	if loc == pdg.Unpinned {
		loc = pdg.App
	}
	if c.cur.Loc == loc {
		return
	}
	next := c.newBlock(loc)
	c.cur.Term = Term{Kind: TGoto, Target: next.ID}
	c.cur = next
}

func (c *compiler) stmtLoc(s source.Stmt) pdg.Loc {
	loc := c.px.StmtLoc(s.ID())
	if loc == pdg.Unpinned {
		return pdg.App
	}
	return loc
}

func (c *compiler) compileMethod(m *source.Method) error {
	c.method = m
	mi := c.prog.Methods[m.QName()]
	c.info = mi
	c.nslots = 1 + len(m.Locals)

	entryLoc := c.px.Place.Of(m.EntryID)
	c.cur = c.newBlock(entryLoc)
	mi.Entry = c.cur.ID

	if err := c.block(m.Body); err != nil {
		return err
	}
	// Fall-through return (zero value).
	c.cur.Term = Term{Kind: TRet, Val: -1}
	mi.NSlots = c.nslots
	return nil
}

func (c *compiler) block(b *source.Block) error {
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s source.Stmt) error {
	loc := c.stmtLoc(s)
	c.ensureLoc(loc)
	prev := c.curStmt
	c.curStmt = s.ID()
	defer func() { c.curStmt = prev }()

	switch st := s.(type) {
	case *source.DeclStmt:
		dst := slotOf(st.Local)
		if st.Init != nil {
			src, err := c.expr(st.Init, loc)
			if err != nil {
				return err
			}
			c.ensureLoc(loc)
			c.emit(Instr{Op: OpMove, A: dst, B: src})
		} else {
			c.emit(Instr{Op: OpConst, A: dst, Lit: st.Local.Type.Zero()})
		}
		c.maybeSendDef(s, dst)
		return nil

	case *source.AssignStmt:
		return c.assign(st, loc)

	case *source.ExprStmt:
		_, err := c.expr(st.X, loc)
		c.ensureLoc(loc)
		return err

	case *source.IfStmt:
		cond, err := c.expr(st.Cond, loc)
		if err != nil {
			return err
		}
		c.ensureLoc(loc)
		condBlock := c.cur
		thenB := c.newBlock(loc)
		c.cur = thenB
		if err := c.block(st.Then); err != nil {
			return err
		}
		thenEnd := c.cur
		var elseB, elseEnd *Block
		if st.Else != nil {
			elseB = c.newBlock(loc)
			c.cur = elseB
			if err := c.block(st.Else); err != nil {
				return err
			}
			elseEnd = c.cur
		}
		merge := c.newBlock(loc)
		condBlock.Term = Term{Kind: TIf, Cond: cond, Then: thenB.ID, Else: merge.ID}
		if elseB != nil {
			condBlock.Term.Else = elseB.ID
			elseEnd.Term = Term{Kind: TGoto, Target: merge.ID}
		}
		thenEnd.Term = Term{Kind: TGoto, Target: merge.ID}
		c.cur = merge
		return nil

	case *source.WhileStmt:
		head := c.newBlock(loc)
		c.cur.Term = Term{Kind: TGoto, Target: head.ID}
		c.cur = head
		cond, err := c.expr(st.Cond, loc)
		if err != nil {
			return err
		}
		c.ensureLoc(loc)
		condEnd := c.cur
		body := c.newBlock(loc)
		c.cur = body
		breakFixups := c.beginLoop()
		if err := c.block(st.Body); err != nil {
			return err
		}
		c.cur.Term = Term{Kind: TGoto, Target: head.ID}
		exit := c.newBlock(loc)
		condEnd.Term = Term{Kind: TIf, Cond: cond, Then: body.ID, Else: exit.ID}
		c.endLoop(breakFixups, exit.ID)
		c.cur = exit
		return nil

	case *source.ForEachStmt:
		// Desugar: idx = 0; arr = <expr>; while (idx < len(arr)) { var = arr[idx]; idx++; body }
		arrSlot, err := c.expr(st.Arr, loc)
		if err != nil {
			return err
		}
		c.ensureLoc(loc)
		arrTmp := c.temp()
		c.emit(Instr{Op: OpMove, A: arrTmp, B: arrSlot})
		idx := c.temp()
		c.emit(Instr{Op: OpConst, A: idx, Lit: val.IntV(0)})

		head := c.newBlock(loc)
		c.cur.Term = Term{Kind: TGoto, Target: head.ID}
		c.cur = head
		lenSlot := c.temp()
		c.emit(Instr{Op: OpLen, A: lenSlot, B: arrTmp})
		cond := c.temp()
		c.emit(Instr{Op: OpBin, A: cond, B: idx, C: lenSlot, Sub: uint8(source.OpLt)})
		condEnd := c.cur

		body := c.newBlock(loc)
		c.cur = body
		c.emit(Instr{Op: OpGetIdx, A: slotOf(st.Var), B: arrTmp, C: idx})
		if st.Var.Type.K == source.KDouble && st.Arr.Type().Elem.K == source.KInt {
			c.emit(Instr{Op: OpConv, A: slotOf(st.Var), B: slotOf(st.Var)})
		}
		one := c.temp()
		c.emit(Instr{Op: OpConst, A: one, Lit: val.IntV(1)})
		c.emit(Instr{Op: OpBin, A: idx, B: idx, C: one, Sub: uint8(source.OpAdd)})
		breakFixups := c.beginLoop()
		if err := c.block(st.Body); err != nil {
			return err
		}
		c.cur.Term = Term{Kind: TGoto, Target: head.ID}
		exit := c.newBlock(loc)
		condEnd.Term = Term{Kind: TIf, Cond: cond, Then: body.ID, Else: exit.ID}
		c.endLoop(breakFixups, exit.ID)
		c.cur = exit
		return nil

	case *source.ReturnStmt:
		ret := -1
		if st.X != nil {
			slot, err := c.expr(st.X, loc)
			if err != nil {
				return err
			}
			c.ensureLoc(loc)
			ret = slot
		}
		c.cur.Term = Term{Kind: TRet, Val: ret}
		// Dead continuation for any following (unreachable) code.
		c.cur = c.newBlock(loc)
		return nil

	case *source.BreakStmt:
		c.pendingBreaks[len(c.pendingBreaks)-1] = append(c.pendingBreaks[len(c.pendingBreaks)-1], c.cur)
		c.cur = c.newBlock(loc) // unreachable continuation
		return nil
	}
	return fmt.Errorf("compile: unhandled statement %T", s)
}

// Loop break bookkeeping: blocks ending in `break` get their TGoto
// patched once the loop exit block exists.
func (c *compiler) beginLoop() int {
	c.pendingBreaks = append(c.pendingBreaks, nil)
	return len(c.pendingBreaks) - 1
}

func (c *compiler) endLoop(level int, exit BlockID) {
	for _, b := range c.pendingBreaks[level] {
		b.Term = Term{Kind: TGoto, Target: exit}
	}
	c.pendingBreaks = c.pendingBreaks[:level]
}

// maybeSendDef ships the payload of a ref-typed definition if a remote
// use exists (pyxil sync plan).
func (c *compiler) maybeSendDef(s source.Stmt, slot int) {
	if c.px.SyncDefs[s.ID()] {
		c.emit(Instr{Op: OpSendNative, A: slot})
	}
}

func (c *compiler) assign(st *source.AssignStmt, loc pdg.Loc) error {
	switch lhs := st.LHS.(type) {
	case *source.VarExpr:
		dst := slotOf(lhs.Local)
		src, err := c.rhsValue(st, dst, loc)
		if err != nil {
			return err
		}
		c.ensureLoc(loc)
		c.emit(Instr{Op: OpMove, A: dst, B: src})
		c.maybeSendDef(st, dst)
		return nil

	case *source.FieldExpr:
		obj, err := c.expr(lhs.Recv, loc)
		if err != nil {
			return err
		}
		fr := c.fieldRef(lhs.Field)
		var src int
		if st.Op == source.AsnSet {
			src, err = c.expr(st.RHS, loc)
			if err != nil {
				return err
			}
		} else {
			old := c.temp()
			c.ensureLoc(loc)
			c.emit(Instr{Op: OpGetField, A: old, B: obj, Field: fr})
			rhs, err := c.expr(st.RHS, loc)
			if err != nil {
				return err
			}
			c.ensureLoc(loc)
			res := c.temp()
			c.emit(Instr{Op: OpBin, A: res, B: old, C: rhs, Sub: compoundOp(st.Op)})
			src = res
		}
		c.ensureLoc(loc)
		c.emit(Instr{Op: OpSetField, A: obj, B: src, Field: fr})
		for _, f := range c.px.SyncFields[st.ID()] {
			if f == lhs.Field {
				c.emit(Instr{Op: OpSendPart, A: obj, Sub: uint8(fr.Loc), Class: fr.Class})
			}
		}
		c.maybeSendDef(st, src)
		return nil

	case *source.IndexExpr:
		arr, err := c.expr(lhs.Arr, loc)
		if err != nil {
			return err
		}
		idx, err := c.expr(lhs.Idx, loc)
		if err != nil {
			return err
		}
		var src int
		if st.Op == source.AsnSet {
			src, err = c.expr(st.RHS, loc)
			if err != nil {
				return err
			}
		} else {
			old := c.temp()
			c.ensureLoc(loc)
			c.emit(Instr{Op: OpGetIdx, A: old, B: arr, C: idx})
			rhs, err := c.expr(st.RHS, loc)
			if err != nil {
				return err
			}
			c.ensureLoc(loc)
			res := c.temp()
			c.emit(Instr{Op: OpBin, A: res, B: old, C: rhs, Sub: compoundOp(st.Op)})
			src = res
		}
		c.ensureLoc(loc)
		c.emit(Instr{Op: OpSetIdx, A: arr, B: idx, C: src})
		if c.px.SyncArrays[st.ID()] {
			c.emit(Instr{Op: OpSendNative, A: arr})
		}
		return nil
	}
	return fmt.Errorf("compile: bad assignment target %T", st.LHS)
}

// rhsValue computes the value to store for an assignment with target
// slot dst (compound ops read the old value first).
func (c *compiler) rhsValue(st *source.AssignStmt, dst int, loc pdg.Loc) (int, error) {
	if st.Op == source.AsnSet {
		return c.expr(st.RHS, loc)
	}
	rhs, err := c.expr(st.RHS, loc)
	if err != nil {
		return 0, err
	}
	c.ensureLoc(loc)
	res := c.temp()
	c.emit(Instr{Op: OpBin, A: res, B: dst, C: rhs, Sub: compoundOp(st.Op)})
	return res, nil
}

func compoundOp(op source.AssignOp) uint8 {
	switch op {
	case source.AsnAdd:
		return uint8(source.OpAdd)
	case source.AsnSub:
		return uint8(source.OpSub)
	case source.AsnMul:
		return uint8(source.OpMul)
	default:
		return uint8(source.OpDiv)
	}
}

func (c *compiler) fieldRef(f *source.Field) *FieldRef {
	return c.prog.Classes[f.Class.Name].Fields[f.Index]
}

// expr compiles an expression at placement loc and returns the slot
// holding its value. Calls split the current block (CPS).
func (c *compiler) expr(e source.Expr, loc pdg.Loc) (int, error) {
	switch x := e.(type) {
	case nil:
		return -1, fmt.Errorf("compile: nil expression")

	case *source.Lit:
		dst := c.temp()
		c.ensureLoc(loc)
		var v val.Value
		switch x.T.K {
		case source.KInt:
			v = val.IntV(x.I)
		case source.KDouble:
			v = val.DoubleV(x.F)
		case source.KString:
			v = val.StrV(x.S)
		case source.KBool:
			v = val.BoolV(x.B)
		default:
			v = val.NullV()
		}
		c.emit(Instr{Op: OpConst, A: dst, Lit: v})
		return dst, nil

	case *source.VarExpr:
		return slotOf(x.Local), nil

	case *source.ThisExpr:
		return 0, nil

	case *source.ConvExpr:
		src, err := c.expr(x.X, loc)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		c.emit(Instr{Op: OpConv, A: dst, B: src})
		return dst, nil

	case *source.FieldExpr:
		obj, err := c.expr(x.Recv, loc)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		c.emit(Instr{Op: OpGetField, A: dst, B: obj, Field: c.fieldRef(x.Field)})
		return dst, nil

	case *source.IndexExpr:
		arr, err := c.expr(x.Arr, loc)
		if err != nil {
			return 0, err
		}
		idx, err := c.expr(x.Idx, loc)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		c.emit(Instr{Op: OpGetIdx, A: dst, B: arr, C: idx})
		return dst, nil

	case *source.UnaryExpr:
		src, err := c.expr(x.X, loc)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		c.emit(Instr{Op: OpUn, A: dst, B: src, Sub: uint8(x.Op)})
		return dst, nil

	case *source.BinaryExpr:
		if x.Op == source.OpAnd || x.Op == source.OpOr {
			return c.shortCircuit(x, loc)
		}
		l, err := c.expr(x.L, loc)
		if err != nil {
			return 0, err
		}
		r, err := c.expr(x.R, loc)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		c.emit(Instr{Op: OpBin, A: dst, B: l, C: r, Sub: uint8(x.Op)})
		return dst, nil

	case *source.CallExpr:
		thisSlot := 0
		if x.Recv != nil {
			s, err := c.expr(x.Recv, loc)
			if err != nil {
				return 0, err
			}
			thisSlot = s
		}
		args := []int{thisSlot}
		for _, a := range x.Args {
			s, err := c.expr(a, loc)
			if err != nil {
				return 0, err
			}
			args = append(args, s)
		}
		c.ensureLoc(loc)
		dst := c.temp()
		cont := c.newBlock(loc)
		c.cur.Term = Term{Kind: TCall, Method: c.prog.Methods[x.Method.QName()],
			Args: args, RetSlot: dst, Cont: cont.ID}
		c.cur = cont
		return dst, nil

	case *source.NewObjectExpr:
		c.ensureLoc(loc)
		dst := c.temp()
		c.emit(Instr{Op: OpNewObj, A: dst, Class: c.prog.Classes[x.Class.Name]})
		if x.Ctor != nil {
			args := []int{dst}
			for _, a := range x.Args {
				s, err := c.expr(a, loc)
				if err != nil {
					return 0, err
				}
				args = append(args, s)
			}
			c.ensureLoc(loc)
			ignore := c.temp()
			cont := c.newBlock(loc)
			c.cur.Term = Term{Kind: TCall, Method: c.prog.Methods[x.Ctor.QName()],
				Args: args, RetSlot: ignore, Cont: cont.ID}
			c.cur = cont
		}
		return dst, nil

	case *source.NewArrayExpr:
		n, err := c.expr(x.Len, loc)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		c.emit(Instr{Op: OpNewArr, A: dst, B: n, Lit: x.Elem.Zero()})
		if c.px.SyncArrays[c.curStmt] {
			// A remote statement reads or writes this allocation site:
			// ship the (zeroed) contents so the remote copy exists.
			c.emit(Instr{Op: OpSendNative, A: dst})
		}
		return dst, nil

	case *source.BuiltinExpr:
		return c.builtin(x, loc)
	}
	return 0, fmt.Errorf("compile: unhandled expression %T", e)
}

func (c *compiler) shortCircuit(x *source.BinaryExpr, loc pdg.Loc) (int, error) {
	dst := c.temp()
	l, err := c.expr(x.L, loc)
	if err != nil {
		return 0, err
	}
	c.ensureLoc(loc)
	c.emit(Instr{Op: OpMove, A: dst, B: l})
	condBlock := c.cur
	evalR := c.newBlock(loc)
	c.cur = evalR
	r, err := c.expr(x.R, loc)
	if err != nil {
		return 0, err
	}
	c.ensureLoc(loc)
	c.emit(Instr{Op: OpMove, A: dst, B: r})
	evalREnd := c.cur
	merge := c.newBlock(loc)
	evalREnd.Term = Term{Kind: TGoto, Target: merge.ID}
	if x.Op == source.OpAnd {
		condBlock.Term = Term{Kind: TIf, Cond: dst, Then: evalR.ID, Else: merge.ID}
	} else {
		condBlock.Term = Term{Kind: TIf, Cond: dst, Then: merge.ID, Else: evalR.ID}
	}
	c.cur = merge
	return dst, nil
}

func (c *compiler) builtin(x *source.BuiltinExpr, loc pdg.Loc) (int, error) {
	evalArgs := func(from int) ([]int, error) {
		var out []int
		for _, a := range x.Args[from:] {
			s, err := c.expr(a, loc)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	}

	switch x.B {
	case source.BQuery, source.BUpdate:
		args, err := evalArgs(1)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		op := OpDBQuery
		if x.B == source.BUpdate {
			op = OpDBExec
		}
		sql := x.SQLText()
		c.emit(Instr{Op: op, A: dst, SQL: sql, SQLID: c.internSQL(sql), Args: args})
		if op == OpDBQuery && c.px.SyncArrays[c.curStmt] {
			c.emit(Instr{Op: OpSendNative, A: dst})
		}
		return dst, nil

	case source.BBegin, source.BCommit, source.BRollback:
		c.ensureLoc(loc)
		op := OpDBBegin
		if x.B == source.BCommit {
			op = OpDBCommit
		} else if x.B == source.BRollback {
			op = OpDBRollback
		}
		c.emit(Instr{Op: op})
		return c.zeroSlot(loc), nil

	case source.BPrint:
		args, err := evalArgs(0)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		c.emit(Instr{Op: OpPrint, Args: args})
		return c.zeroSlot(loc), nil

	case source.BSha1, source.BStr:
		src, err := c.expr(x.Args[0], loc)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		op := OpSha1
		if x.B == source.BStr {
			op = OpStr
		}
		c.emit(Instr{Op: op, A: dst, B: src})
		return dst, nil

	case source.BRows:
		tbl, err := c.expr(x.Recv, loc)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		c.emit(Instr{Op: OpTblRows, A: dst, B: tbl})
		return dst, nil

	case source.BGetInt, source.BGetDouble, source.BGetString:
		tbl, err := c.expr(x.Recv, loc)
		if err != nil {
			return 0, err
		}
		row, err := c.expr(x.Args[0], loc)
		if err != nil {
			return 0, err
		}
		col, err := c.expr(x.Args[1], loc)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		c.emit(Instr{Op: OpTblGet, A: dst, B: tbl, C: row, Args: []int{col}, Sub: uint8(x.B)})
		return dst, nil

	case source.BLen:
		arr, err := c.expr(x.Recv, loc)
		if err != nil {
			return 0, err
		}
		c.ensureLoc(loc)
		dst := c.temp()
		c.emit(Instr{Op: OpLen, A: dst, B: arr})
		return dst, nil
	}
	return 0, fmt.Errorf("compile: unhandled builtin %v", x.B)
}

// internSQL numbers a distinct SQL string into the program-wide
// statement table (same program on both peers ⇒ same numbering).
func (c *compiler) internSQL(sql string) int32 {
	if id, ok := c.sqlIDs[sql]; ok {
		return id
	}
	id := int32(len(c.prog.SQLTable))
	c.prog.SQLTable = append(c.prog.SQLTable, sql)
	c.sqlIDs[sql] = id
	return id
}

func (c *compiler) zeroSlot(loc pdg.Loc) int {
	c.ensureLoc(loc)
	dst := c.temp()
	c.emit(Instr{Op: OpConst, A: dst, Lit: val.NullV()})
	return dst
}
