package compile

import (
	"testing"

	"pyxis/internal/analysis"
	"pyxis/internal/pdg"
	"pyxis/internal/profile"
	"pyxis/internal/pyxil"
	"pyxis/internal/source"
)

// compileAllApp compiles a source with everything on the APP side.
func compileAllApp(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := source.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(prog)
	g := pdg.Build(res, profile.New(), pdg.Options{})
	place := pdg.Placement{}
	for id := range g.Nodes {
		place[id] = pdg.App
	}
	place[g.DBCodeID] = pdg.DB
	px := pyxil.Generate(res, g, place, pyxil.Options{})
	compiled, err := Compile(px)
	if err != nil {
		t.Fatal(err)
	}
	return compiled
}

// checkProgram verifies the structural invariants Fuse must preserve:
// dense IDs, valid terminator targets, valid method entries.
func checkProgram(t *testing.T, p *Program) {
	t.Helper()
	for i, b := range p.Blocks {
		if int(b.ID) != i {
			t.Fatalf("block at index %d has ID %d (not dense)", i, b.ID)
		}
		check := func(id BlockID) {
			if int(id) < 0 || int(id) >= len(p.Blocks) {
				t.Fatalf("block %d: terminator target %d out of range", b.ID, id)
			}
		}
		switch b.Term.Kind {
		case TGoto:
			check(b.Term.Target)
		case TIf:
			check(b.Term.Then)
			check(b.Term.Else)
		case TCall:
			check(b.Term.Cont)
		}
	}
	for _, m := range p.MethodList {
		if int(m.Entry) < 0 || int(m.Entry) >= len(p.Blocks) {
			t.Fatalf("method %s: entry %d out of range", m.QName, m.Entry)
		}
	}
}

// crossLocEdges counts terminator edges that land on the other side —
// the transfer-eligible boundaries.
func crossLocEdges(p *Program) int {
	n := 0
	edge := func(from *Block, to BlockID) {
		if p.Blocks[to].Loc != from.Loc {
			n++
		}
	}
	for _, b := range p.Blocks {
		switch b.Term.Kind {
		case TGoto:
			edge(b, b.Term.Target)
		case TIf:
			edge(b, b.Term.Then)
			edge(b, b.Term.Else)
		case TCall:
			edge(b, b.Term.Method.Entry)
			edge(b, b.Term.Cont)
		}
	}
	return n
}

func TestFuseShrinksAndStaysValid(t *testing.T) {
	p := compileSplit(t)
	before := len(p.Blocks)
	crossBefore := crossLocEdges(p)
	stats := Fuse(p)
	if !p.Fused {
		t.Error("Fused flag not set")
	}
	if stats.BlocksBefore != before || stats.BlocksAfter != len(p.Blocks) {
		t.Errorf("stats %+v inconsistent with program (%d→%d)", stats, before, len(p.Blocks))
	}
	if len(p.Blocks) >= before {
		t.Errorf("fusion did not shrink the program: %d → %d", before, len(p.Blocks))
	}
	if stats.Merged+stats.Threaded+stats.Dropped == 0 {
		t.Error("fusion found nothing to do on a program with dead continuations")
	}
	if got := crossLocEdges(p); got > crossBefore {
		t.Errorf("transfer-eligible boundaries grew under fusion: %d → %d", crossBefore, got)
	}
	checkProgram(t, p)
}

func TestFuseOnlyMergesSameLoc(t *testing.T) {
	p := compileSplit(t)
	Fuse(p)
	// Every block still has a single placement by construction; what
	// fusion must preserve is that no block "jumped" sides: re-walk and
	// confirm every cross-loc edge is still a block boundary (trivially
	// true — this guards against fusion ever concatenating mixed-loc
	// code, which would desync the placement check in Session.Run).
	for _, b := range p.Blocks {
		if b.Term.Kind == TGoto && p.Blocks[b.Term.Target].Loc == b.Loc {
			// A surviving same-loc goto must have a join (refcount>1)
			// or entry target; count its predecessors to prove it.
			preds := 0
			for _, o := range p.Blocks {
				switch o.Term.Kind {
				case TGoto:
					if o.Term.Target == b.Term.Target {
						preds++
					}
				case TIf:
					if o.Term.Then == b.Term.Target {
						preds++
					}
					if o.Term.Else == b.Term.Target {
						preds++
					}
				case TCall:
					if o.Term.Cont == b.Term.Target {
						preds++
					}
				}
			}
			entry := false
			for _, m := range p.MethodList {
				if m.Entry == b.Term.Target {
					entry = true
				}
			}
			if preds <= 1 && !entry {
				t.Errorf("block %d: same-loc goto to single-pred non-entry b%d survived fusion",
					b.ID, b.Term.Target)
			}
		}
	}
}

func TestFuseLiveness(t *testing.T) {
	p := compileSplit(t)
	Fuse(p)
	for _, b := range p.Blocks {
		if b.LiveIn == nil {
			t.Fatalf("block %d: liveness not computed", b.ID)
		}
	}
	// step(int x) { return x + 1; } — live-in at entry is exactly the
	// parameter slot 1 (`this` is never read).
	step := p.Method("P.step")
	li := p.Blocks[step.Entry]
	for s := 0; s < step.NSlots; s++ {
		want := s == 1
		if li.LiveAt(s) != want {
			t.Errorf("P.step entry: LiveAt(%d) = %v, want %v", s, li.LiveAt(s), want)
		}
	}
	// work's entry must see its parameter n but no temps beyond the
	// declared locals.
	work := p.Method("P.work")
	we := p.Blocks[work.Entry]
	if !we.LiveAt(1) {
		t.Error("P.work entry: parameter slot 1 not live")
	}
}

func TestFuseSQLTableAndMethodIdx(t *testing.T) {
	p := compileAllApp(t, `
class Q {
    entry int go(int k) {
        table t = db.query("SELECT v FROM kv WHERE k = ?", k);
        db.update("UPDATE kv SET v = v + 1 WHERE k = ?", k);
        table u = db.query("SELECT v FROM kv WHERE k = ?", k);
        return t.rows() + u.rows();
    }
}
`)
	if len(p.SQLTable) != 2 {
		t.Fatalf("SQLTable has %d entries, want 2 (duplicate query must intern): %q", len(p.SQLTable), p.SQLTable)
	}
	seen := map[int32]string{}
	for _, b := range p.Blocks {
		for _, in := range b.Code {
			if in.Op == OpDBQuery || in.Op == OpDBExec {
				if p.SQLTable[in.SQLID] != in.SQL {
					t.Errorf("SQLID %d resolves to %q, instr carries %q", in.SQLID, p.SQLTable[in.SQLID], in.SQL)
				}
				seen[in.SQLID] = in.SQL
			}
		}
	}
	if len(seen) != 2 {
		t.Errorf("distinct SQLIDs = %d, want 2", len(seen))
	}
	for i, m := range p.MethodList {
		if m.Idx != i {
			t.Errorf("method %s: Idx=%d, want %d", m.QName, m.Idx, i)
		}
	}
}

// A loop whose body always breaks leaves the loop head with a single
// reachable predecessor — the canonical goto-chain merge.
func TestFuseMergesGotoChain(t *testing.T) {
	p := compileAllApp(t, `
class M {
    entry int run(int n) {
        int s = 0;
        while (s < n) {
            s = s + 1;
            break;
        }
        return s;
    }
}
`)
	stats := Fuse(p)
	if stats.Merged == 0 {
		t.Fatalf("expected a goto-chain merge, got %v", stats)
	}
	checkProgram(t, p)
	// The entry block must now hold both the init and the loop
	// condition (the head was absorbed).
	run := p.Method("M.run")
	entry := p.Blocks[run.Entry]
	if entry.Term.Kind != TIf {
		t.Errorf("entry terminator = %v, want TIf (head merged in)", entry.Term.Kind)
	}
}

// TestFuseDeterministic: both peers run Compile+Fuse independently on
// the same PyxIL; the results must be bit-identical or the block IDs
// exchanged on the wire would diverge.
func TestFuseDeterministic(t *testing.T) {
	a := compileSplit(t)
	b := compileSplit(t)
	Fuse(a)
	Fuse(b)
	if a.Disassemble() != b.Disassemble() {
		t.Fatal("fusion is not deterministic across identical compiles")
	}
}
