package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture runner is analysistest in miniature: each analyzer owns
// a package under testdata/src/<name>/ whose sources carry
// `// want "regexp"` comments on the lines where a diagnostic must
// appear. The runner fails on any unexpected diagnostic and on any
// unmatched want — so every fixture proves both a true positive (the
// analyzer bites) and a suppression (the //pyxlint:allow cases and
// built-in exemptions stay silent).

var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type wantDiag struct {
	key string // base-filename:line
	re  *regexp.Regexp
	hit bool
}

func collectWants(t *testing.T, dir string) []*wantDiag {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantDiag
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, m[1], err)
				}
				wants = append(wants, &wantDiag{
					key: fmt.Sprintf("%s:%d", e.Name(), i+1),
					re:  re,
				})
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no wants — it proves nothing", dir)
	}
	return wants
}

func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	wants := collectWants(t, dir)
	diags, err := Check(dir, CheckOptions{IncludeTests: true, Analyzers: []*Analyzer{a}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		matched := false
		for _, w := range wants {
			if !w.hit && w.key == key && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("no diagnostic at %s matching %q", w.key, w.re)
		}
	}
}

func TestLatchOrderFixture(t *testing.T)     { runFixture(t, LatchOrder, "latchorder") }
func TestReleaseOnErrorFixture(t *testing.T) { runFixture(t, ReleaseOnError, "releaseonerror") }
func TestAtomicFieldFixture(t *testing.T)    { runFixture(t, AtomicField, "atomicfield") }
func TestSentinelErrFixture(t *testing.T)    { runFixture(t, SentinelErr, "sentinelerr") }
func TestBlockingCallFixture(t *testing.T)   { runFixture(t, BlockingCall, "blockingcall") }
func TestStaleAllowFixture(t *testing.T)     { runFixture(t, StaleAllow, "staleallow") }

// TestRosterComplete pins the roster: a new analyzer must ship with a
// fixture directory before it can join Analyzers().
func TestRosterComplete(t *testing.T) {
	for _, a := range Analyzers() {
		if _, err := os.Stat(filepath.Join("testdata", "src", a.Name)); err != nil {
			t.Errorf("analyzer %s has no fixture package: %v", a.Name, err)
		}
	}
}
