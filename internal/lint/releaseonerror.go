package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ReleaseOnError is the CFG-based leak check for pooled and
// lock-holding resources — the machine version of PR 7's
// transfer-failure bug family, where `invoke` error exits leaked the
// APP-side transaction's row locks and v1 stack-decode errors leaked
// pooled frames.
//
// For every assignment `v := x.M(...)` where M is a configured
// acquire (session frames from the free-list, prepared 2PC
// transactions), the analyzer walks the function's control-flow graph
// from the acquisition and demands that every reachable return
// statement either follows a point where v was released or handed
// off, or mentions v itself. "Handed off" is deliberately permissive
// — ownership-transfer is idiomatic, leak-by-omission is the bug:
//
//   - v passed (directly) as an argument to any call — including
//     append, the release functions themselves, and encoders that
//     assume ownership;
//   - a configured release/resolve method called on v;
//   - v returned, sent on a channel, stored via assignment, placed in
//     a composite literal, or address-taken;
//   - v captured by any defer in the function (deferred cleanup).
//
// What remains is exactly the bug shape: a return path on which the
// acquired value was never mentioned again. Functions using control
// flow the graph cannot model (goto) are skipped, and intentional
// leaks carry a //pyxlint:allow releaseonerror directive.
var ReleaseOnError = &Analyzer{
	Name: "releaseonerror",
	Doc: "acquired pooled/lock-holding resources (session frames, prepared 2PC txns) " +
		"must be released or handed off on every return path",
	Run: runReleaseOnError,
}

// acquireSpec names one resource-acquiring method and the methods
// that release its result.
type acquireSpec struct {
	method   string // acquire method name
	recv     string // receiver type name; enforced when type info resolves
	kind     string // human-readable resource name for diagnostics
	releases map[string]bool
}

// releaseAcquires is the configured resource set. Unexported acquire
// methods (newFrame) can only match inside their declaring package,
// where the tolerant loader resolves them fully; exported ones
// (Prepare2PC) also match cross-package by name when type information
// is unavailable.
var releaseAcquires = []acquireSpec{
	{
		method: "newFrame", recv: "Session", kind: "pooled frame",
		releases: map[string]bool{"freeFrame": true, "freeStack": true},
	},
	{
		method: "Prepare2PC", recv: "Session", kind: "prepared 2PC transaction",
		releases: map[string]bool{"Commit": true, "Abort": true, "Rollback": true},
	},
	{
		// A live-rebalancing write-fence blocks every writer (and
		// reader) of the moving warehouse range until its token is
		// released or its TTL lapses; a leaked token means the range
		// stays dark for the full TTL.
		method: "ArmFence", recv: "DB", kind: "armed migration write-fence",
		releases: map[string]bool{"ReleaseFence": true},
	},
}

func runReleaseOnError(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			// Tests acquire-and-abandon deliberately (fault injection,
			// pool-shrink regressions); the race jobs own them.
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncReleases(pass, fd)
		}
	}
	return nil
}

func checkFuncReleases(pass *Pass, fd *ast.FuncDecl) {
	// Find acquisitions first; build the (costlier) flow graph only if
	// there are any.
	type acquisition struct {
		stmt *ast.AssignStmt
		v    *ast.Ident
		obj  types.Object
		spec *acquireSpec
	}
	var acqs []acquisition
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		spec := matchAcquire(pass, sel)
		if spec == nil {
			return true
		}
		if len(as.Lhs) == 0 {
			return true
		}
		v, ok := as.Lhs[0].(*ast.Ident)
		if !ok || v.Name == "_" {
			return true
		}
		acqs = append(acqs, acquisition{stmt: as, v: v, obj: pass.Info.Defs[v], spec: spec})
		return true
	})
	if len(acqs) == 0 {
		return
	}

	g := buildFlow(fd.Body)
	if !g.ok {
		return // unmodelable control flow; stay silent rather than guess
	}
	for _, acq := range acqs {
		isV := identMatcher(pass, acq.v, acq.obj)

		// A defer that captures v is cleanup on every exit.
		deferred := false
		for _, call := range g.defers {
			ast.Inspect(call, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && isV(id) {
					deferred = true
				}
				return true
			})
		}
		if deferred {
			continue
		}

		start := findStmtNode(g.entry, acq.stmt)
		if start == nil {
			continue // acquire nested in init clause etc.; out of model
		}
		exempt := failFastReturns(pass, fd, acq.stmt)
		if leak := firstLeakyReturn(start, acq.spec, isV, exempt); leak != nil {
			pass.Reportf(acq.stmt.Pos(),
				"%s %q from %s may leak: return at %s is reachable without a release (%s) or handoff",
				acq.spec.kind, acq.v.Name, acq.spec.method,
				pass.Fset.Position(leak.Pos()), releaseNames(acq.spec))
		}
	}
}

// matchAcquire reports whether sel is a call of a configured acquire
// method, checking the receiver type when the selection resolves.
func matchAcquire(pass *Pass, sel *ast.SelectorExpr) *acquireSpec {
	for i := range releaseAcquires {
		spec := &releaseAcquires[i]
		if sel.Sel.Name != spec.method {
			continue
		}
		if selection, ok := pass.Info.Selections[sel]; ok {
			if namedTypeName(selection.Recv()) != spec.recv {
				continue
			}
		} else if !ast.IsExported(spec.method) {
			// Unexported acquires resolve in their declaring package; an
			// unresolved match elsewhere is a different method.
			continue
		}
		return spec
	}
	return nil
}

// identMatcher matches uses of the acquired variable, by object when
// the type checker resolved it and by name otherwise.
func identMatcher(pass *Pass, v *ast.Ident, obj types.Object) func(ast.Expr) bool {
	return func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		if obj != nil {
			return pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj
		}
		return id.Name == v.Name
	}
}

// findStmtNode locates the node holding stmt.
func findStmtNode(entry *flowNode, stmt ast.Stmt) *flowNode {
	seen := map[*flowNode]bool{}
	var walk func(n *flowNode) *flowNode
	walk = func(n *flowNode) *flowNode {
		if n == nil || seen[n] {
			return nil
		}
		seen[n] = true
		if n.stmt == stmt {
			return n
		}
		for _, s := range n.succs {
			if found := walk(s); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(entry)
}

// firstLeakyReturn walks successors of start looking for a return
// reachable while v is still live (never released or handed off on
// the path). Only the not-yet-consumed state explores; consumption
// ends a path.
func firstLeakyReturn(start *flowNode, spec *acquireSpec, isV func(ast.Expr) bool, exempt map[*ast.ReturnStmt]bool) *ast.ReturnStmt {
	visited := map[*flowNode]bool{}
	var walk func(n *flowNode) *ast.ReturnStmt
	walk = func(n *flowNode) *ast.ReturnStmt {
		if n == nil || visited[n] {
			return nil
		}
		visited[n] = true
		if nodeConsumes(n, spec, isV) {
			return nil
		}
		if n.ret != nil {
			if exempt[n.ret] {
				return nil
			}
			return n.ret
		}
		for _, s := range n.succs {
			if leak := walk(s); leak != nil {
				return leak
			}
		}
		return nil
	}
	for _, s := range start.succs {
		if leak := walk(s); leak != nil {
			return leak
		}
	}
	return nil
}

// failFastReturns collects the return statements inside the
// `if err != nil { ... }` guard immediately following the acquire,
// where err is the acquisition's second assignee. On that path the
// acquire itself failed, so the resource is nil and there is nothing
// to release — the standard Go fail-fast idiom must not be flagged.
func failFastReturns(pass *Pass, fd *ast.FuncDecl, acq *ast.AssignStmt) map[*ast.ReturnStmt]bool {
	if len(acq.Lhs) != 2 {
		return nil
	}
	errID, ok := acq.Lhs[1].(*ast.Ident)
	if !ok || errID.Name == "_" {
		return nil
	}
	next := nextSiblingStmt(fd.Body, acq)
	ifs, ok := next.(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return nil
	}
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.NEQ {
		return nil
	}
	isErr := identMatcher(pass, errID, pass.Info.Defs[errID])
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if !(isErr(cond.X) && isNil(cond.Y) || isErr(cond.Y) && isNil(cond.X)) {
		return nil
	}
	out := map[*ast.ReturnStmt]bool{}
	ast.Inspect(ifs.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			out[r] = true
		}
		return true
	})
	return out
}

// nextSiblingStmt finds the statement following stmt in its enclosing
// statement list.
func nextSiblingStmt(root ast.Node, stmt ast.Stmt) ast.Stmt {
	var next ast.Stmt
	scan := func(list []ast.Stmt) {
		for i, s := range list {
			if s == stmt && i+1 < len(list) {
				next = list[i+1]
			}
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		if next != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.BlockStmt:
			scan(n.List)
		case *ast.CaseClause:
			scan(n.Body)
		case *ast.CommClause:
			scan(n.Body)
		}
		return true
	})
	return next
}

// nodeConsumes reports whether the node's evaluated syntax releases
// or hands off v (see the analyzer doc for the exact positions).
func nodeConsumes(n *flowNode, spec *acquireSpec, isV func(ast.Expr) bool) bool {
	consumed := false
	for _, scan := range n.scan {
		ast.Inspect(scan, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.CallExpr:
				if sel, ok := node.Fun.(*ast.SelectorExpr); ok && isV(sel.X) && spec.releases[sel.Sel.Name] {
					consumed = true
				}
				for _, a := range node.Args {
					if isV(a) {
						consumed = true
					}
				}
			case *ast.AssignStmt:
				for _, r := range node.Rhs {
					if isV(r) {
						consumed = true
					}
				}
			case *ast.ReturnStmt:
				for _, r := range node.Results {
					if isV(r) {
						consumed = true
					}
				}
			case *ast.CompositeLit:
				for _, el := range node.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					if isV(el) {
						consumed = true
					}
				}
			case *ast.UnaryExpr:
				if node.Op == token.AND && isV(node.X) {
					consumed = true
				}
			case *ast.SendStmt:
				if isV(node.Value) {
					consumed = true
				}
			}
			return true
		})
	}
	return consumed
}

func releaseNames(spec *acquireSpec) string {
	out := ""
	for _, name := range sortedKeys(spec.releases) {
		if out != "" {
			out += "/"
		}
		out += name
	}
	return out
}
