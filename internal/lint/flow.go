package lint

import (
	"go/ast"
	"go/token"
)

// This file is the intra-procedural control-flow graph the
// releaseonerror analyzer walks: one node per statement, with
// condition/init expressions attached to the node that evaluates them
// and explicit successor edges through if/for/range/switch/select/
// branch statements. It is the Go-source sibling of
// internal/analysis/cfg.go, which builds the same structure over PyxJ
// statements for the partitioner.
//
// The builder is deliberately conservative: control flow it cannot
// model exactly (goto, fallthrough into computed targets) marks the
// graph unusable and the analyzer skips the whole function rather
// than reporting on an approximate graph.

// flowNode is one statement's node. scan lists the syntax evaluated
// AT this node (the statement itself for simple statements; only the
// init/cond parts for compound ones, whose bodies get their own
// nodes).
type flowNode struct {
	scan  []ast.Node
	stmt  ast.Stmt        // the originating statement (simple statements only)
	ret   *ast.ReturnStmt // non-nil when this node is a return
	succs []*flowNode
}

// flowGraph is one function body's graph.
type flowGraph struct {
	entry  *flowNode
	defers []*ast.CallExpr // calls registered by defer statements anywhere in the body
	ok     bool            // false: unsupported control flow, callers must skip
}

type flowBuilder struct {
	g            *flowGraph
	breaks       []*flowNode // innermost-last break targets (loops, switches, selects)
	continues    []*flowNode // innermost-last continue targets (loops)
	labels       map[string][2]*flowNode
	pendingLabel string
	fall         *flowNode // fallthrough target inside a switch clause
}

// buildFlow constructs the graph for body.
func buildFlow(body *ast.BlockStmt) *flowGraph {
	b := &flowBuilder{g: &flowGraph{ok: true}, labels: map[string][2]*flowNode{}}
	exit := &flowNode{}
	b.g.entry = b.stmts(body.List, exit)
	return b.g
}

func (b *flowBuilder) node(stmt ast.Stmt, next *flowNode, scan ...ast.Node) *flowNode {
	n := &flowNode{stmt: stmt}
	for _, s := range scan {
		if s != nil {
			n.scan = append(n.scan, s)
		}
	}
	if next != nil {
		n.succs = []*flowNode{next}
	}
	return n
}

func (b *flowBuilder) stmts(list []ast.Stmt, next *flowNode) *flowNode {
	for i := len(list) - 1; i >= 0; i-- {
		next = b.stmt(list[i], next)
	}
	return next
}

func (b *flowBuilder) stmt(s ast.Stmt, next *flowNode) *flowNode {
	switch s := s.(type) {
	case nil:
		return next

	case *ast.BlockStmt:
		return b.stmts(s.List, next)

	case *ast.ReturnStmt:
		n := b.node(s, nil, s)
		n.ret = s
		return n

	case *ast.IfStmt:
		elseEntry := next
		if s.Else != nil {
			elseEntry = b.stmt(s.Else, next)
		}
		thenEntry := b.stmts(s.Body.List, next)
		n := b.node(nil, nil, s.Init, s.Cond)
		n.succs = []*flowNode{thenEntry, elseEntry}
		return n

	case *ast.ForStmt:
		loop := b.node(nil, nil, s.Cond)
		post := loop
		if s.Post != nil {
			post = b.node(s.Post, loop, s.Post)
		}
		b.enterLoop(next, post)
		bodyEntry := b.stmts(s.Body.List, post)
		b.leave()
		// Conservative: always include the exit edge, even for `for {}`
		// — extra paths only over-approximate reachability.
		loop.succs = []*flowNode{bodyEntry, next}
		if s.Init != nil {
			return b.node(s.Init, loop, s.Init)
		}
		return loop

	case *ast.RangeStmt:
		loop := b.node(nil, nil, s.X)
		b.enterLoop(next, loop)
		bodyEntry := b.stmts(s.Body.List, loop)
		b.leave()
		loop.succs = []*flowNode{bodyEntry, next}
		return loop

	case *ast.SwitchStmt:
		return b.switchStmt(s.Init, s.Tag, s.Body.List, next, true)

	case *ast.TypeSwitchStmt:
		return b.switchStmt(s.Init, nil, s.Body.List, next, false)

	case *ast.SelectStmt:
		b.enterSwitch(next)
		n := b.node(nil, nil)
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			bodyEntry := b.stmts(cc.Body, next)
			head := b.node(nil, bodyEntry, cc.Comm)
			n.succs = append(n.succs, head)
		}
		if len(n.succs) == 0 {
			n.succs = []*flowNode{next}
		}
		b.leave()
		return n

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		return b.stmt(s.Stmt, next)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.branchTarget(s.Label, 0, b.breaks); t != nil {
				return b.node(s, t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, 1, b.continues); t != nil {
				return b.node(s, t)
			}
		case token.FALLTHROUGH:
			if b.fall != nil {
				return b.node(s, b.fall)
			}
		}
		b.g.ok = false // goto, or an unresolved label
		return b.node(s, nil)

	case *ast.DeferStmt:
		b.g.defers = append(b.g.defers, s.Call)
		return b.node(s, next, s)

	default:
		// Simple statements: assignments, expressions, declarations,
		// sends, inc/dec, go.
		return b.node(s, next, s)
	}
}

// switchStmt builds expression and type switches. Clause bodies flow
// to next (implicit break); a trailing fallthrough flows to the next
// clause's body.
func (b *flowBuilder) switchStmt(init ast.Stmt, tag ast.Expr, clauses []ast.Stmt, next *flowNode, allowFall bool) *flowNode {
	b.enterSwitch(next)
	n := b.node(nil, nil, init, tag)
	hasDefault := false
	var nextBody *flowNode
	for i := len(clauses) - 1; i >= 0; i-- {
		cc := clauses[i].(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		savedFall := b.fall
		if allowFall {
			b.fall = nextBody
		}
		bodyEntry := b.stmts(cc.Body, next)
		b.fall = savedFall
		scan := make([]ast.Node, len(cc.List))
		for j, e := range cc.List {
			scan[j] = e
		}
		head := b.node(nil, bodyEntry, scan...)
		n.succs = append([]*flowNode{head}, n.succs...)
		nextBody = bodyEntry
	}
	if !hasDefault || len(n.succs) == 0 {
		n.succs = append(n.succs, next)
	}
	b.leave()
	return n
}

// enterLoop pushes break/continue targets; a pending label binds to
// them.
func (b *flowBuilder) enterLoop(brk, cont *flowNode) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = [2]*flowNode{brk, cont}
		b.pendingLabel = ""
	}
}

// enterSwitch pushes only a break target (continue skips switches).
func (b *flowBuilder) enterSwitch(brk *flowNode) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, nil)
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = [2]*flowNode{brk, nil}
		b.pendingLabel = ""
	}
}

func (b *flowBuilder) leave() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// branchTarget resolves a break/continue target: labeled from the
// label table, unlabeled from the innermost non-nil stack entry.
func (b *flowBuilder) branchTarget(label *ast.Ident, which int, stack []*flowNode) *flowNode {
	if label != nil {
		return b.labels[label.Name][which]
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i] != nil {
			return stack[i]
		}
	}
	return nil
}
