package lint

import (
	"go/ast"
	"go/token"
)

// BlockingCall forbids parking a goroutine while it holds a hierarchy
// latch. A goroutine that blocks on the network (wire RPCs like Call /
// CallEntry / TxnCtl / MigCtl, dials, accepts), on a channel receive,
// on a default-less select, or on a wait/sleep while holding one of
// the latches in latchHierarchies keeps every contender of that latch
// parked for the full stall — the exact shape that turned the shard
// rebalancer's first draft into a cluster-wide freeze when one replica
// dropped off the network.
//
// The scan is the same source-order approximation latchorder's rule 2
// uses: Lock/RLock on a hierarchy field pushes the latch, a matching
// Unlock/RUnlock pops it, and any blocking operation in between is a
// finding. Function literals are skipped (a closure runs on its own
// goroutine's schedule, and the latch set at its definition says
// nothing about the latch set at its call), and so are defer bodies
// (a deferred unlock must not count as an early release, and deferred
// blocking work runs after the function body — with the latch already
// released when the unlock defer was stacked later).
//
// Functions that genuinely must hold a latch across a blocking call
// go in BlockingCallAllow with the story for why the stall is
// bounded; test files are exempt (they block deliberately, under the
// race jobs' watch).
var BlockingCall = &Analyzer{
	Name: "blockingcall",
	Doc: "forbid blocking operations (wire RPCs, channel receives, default-less selects, waits) " +
		"while holding a latch from the package's latch hierarchy",
	Run: runBlockingCall,
}

// BlockingCallAllow exempts functions from the rule, each with the
// story for why holding the latch across the stall is safe.
var BlockingCallAllow = map[string]string{
	"(*Migrator).Move": "migMu is rank 1 and exists precisely to serialize whole moves, wire round-trips " +
		"included; nothing else blocks on migMu-holders, and the victim shard's TTL'd fence unwedges a " +
		"mid-move crash",
}

// blockingCallNames classifies callee method names that park the
// goroutine: the dbapi/runtime wire surface, raw net dials/accepts,
// and the sync/time parking calls.
var blockingCallNames = map[string]string{
	"Call":        "a wire RPC",
	"CallEntry":   "a wire RPC",
	"TxnCtl":      "a transaction-control RPC",
	"MigCtl":      "a migration-control RPC",
	"Dial":        "a network dial",
	"DialTimeout": "a network dial",
	"Accept":      "a network accept",
	"Wait":        "a wait",
	"Sleep":       "a sleep",
}

// blockingCallViolation is one finding of the exemption-blind scan;
// staleallow re-runs it inside BlockingCallAllow-listed functions to
// prove each entry still exempts something.
type blockingCallViolation struct {
	pos   token.Pos
	what  string // "calls MigCtl (a migration-control RPC)", "receives from a channel", ...
	latch string // the innermost hierarchy latch held
}

// blockingCallViolations scans one function body in source order,
// tracking the held-latch stack.
func blockingCallViolations(fd *ast.FuncDecl, ranks map[string]int) []blockingCallViolation {
	var out []blockingCallViolation

	// A default-less select is reported as a whole; its comm-clause
	// receive expressions must not ALSO be reported as channel
	// receives, so collect them first.
	commRecv := map[*ast.UnaryExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			return true
		}
		ast.Inspect(cc.Comm, func(c ast.Node) bool {
			if ue, ok := c.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				commRecv[ue] = true
			}
			return true
		})
		return true
	})

	var held []string
	report := func(pos token.Pos, what string) {
		out = append(out, blockingCallViolation{pos: pos, what: what, latch: held[len(held)-1]})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if field, kind, ok := latchLockCall(x); ok && ranks[field] != 0 {
				if kind == latchAcquire {
					held = append(held, field)
				} else {
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == field {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if len(held) == 0 {
				return true
			}
			name := ""
			switch fun := x.Fun.(type) {
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			case *ast.Ident:
				name = fun.Name
			}
			if class, ok := blockingCallNames[name]; ok {
				report(x.Fun.Pos(), "calls "+name+" ("+class+")")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && len(held) > 0 && !commRecv[x] {
				report(x.Pos(), "receives from a channel")
			}
		case *ast.SelectStmt:
			if len(held) == 0 {
				return true
			}
			hasDefault := false
			for _, cl := range x.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				report(x.Pos(), "blocks in a select with no default")
			}
		}
		return true
	})
	return out
}

func runBlockingCall(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	ranks := latchHierarchies[pass.Pkg.Name()]
	if ranks == nil {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := funcKey(fd)
			if _, exempt := BlockingCallAllow[fn]; exempt {
				continue
			}
			for _, viol := range blockingCallViolations(fd, ranks) {
				pass.Reportf(viol.pos,
					"%s %s while holding %s — a parked goroutine keeps every contender of %s parked too "+
						"(release the latch first, or add a BlockingCallAllow story)",
					fn, viol.what, viol.latch, viol.latch)
			}
		}
	}
	return nil
}
