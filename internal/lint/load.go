package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the tolerant package loader: it parses one directory's
// Go files and type-checks them with unresolved imports mapped to
// empty placeholder packages — exactly the scheme the old
// sqldb latch-audit test proved out. Selections and uses on the
// package's OWN declarations (all four analyzers' primary signal)
// resolve fully; cross-package references come out invalid and the
// analyzers fall back to syntactic matching for them. The vet
// -vettool driver supplies real export data instead (see unitcheck.go),
// so `go vet -vettool=pyxis-lint ./...` runs with complete types.

// CheckOptions configures Check.
type CheckOptions struct {
	// IncludeTests also loads _test.go files (in-package and external
	// test package files are checked as separate passes).
	IncludeTests bool
	// ExtraFiles maps synthetic filenames to source text parsed into
	// the package — the latch-audit liveness test injects an unaudited
	// access site this way to prove the analyzer still bites.
	ExtraFiles map[string]string
	// Analyzers is the set to run; nil means the full roster.
	Analyzers []*Analyzer
}

// Check loads the package rooted at dir and runs the analyzers over
// it, returning the surviving diagnostics sorted by position.
func Check(dir string, opts CheckOptions) ([]Diagnostic, error) {
	analyzers := opts.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	fset := token.NewFileSet()
	groups, err := parseDir(fset, dir, opts)
	if err != nil {
		return nil, err
	}
	var out []Diagnostic
	for _, name := range sortedKeys(groups) {
		files := groups[name]
		pkg, info := typecheckTolerant(fset, name, files)
		diags, err := runAnalyzers(fset, files, pkg, info, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		if out[i].Pos.Column != out[j].Pos.Column {
			return out[i].Pos.Column < out[j].Pos.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// parseDir parses dir's Go files (plus opts.ExtraFiles), grouped by
// package clause so external _test packages check separately.
func parseDir(fset *token.FileSet, dir string, opts CheckOptions) (map[string][]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	groups := map[string][]*ast.File{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !opts.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", name, err)
		}
		groups[f.Name.Name] = append(groups[f.Name.Name], f)
	}
	for _, name := range sortedKeys(opts.ExtraFiles) {
		f, err := parser.ParseFile(fset, name, opts.ExtraFiles[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse extra %s: %w", name, err)
		}
		groups[f.Name.Name] = append(groups[f.Name.Name], f)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	return groups, nil
}

// typecheckTolerant type-checks files with unresolved imports stubbed
// out and all errors swallowed; own-package resolution is what the
// analyzers rely on.
func typecheckTolerant(fset *token.FileSet, pkgName string, files []*ast.File) (*types.Package, *types.Info) {
	info := &types.Info{
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{
		Error:    func(error) {}, // tolerate unresolved imports
		Importer: emptyImporter{},
	}
	pkg, _ := conf.Check(pkgName, fset, files, info)
	return pkg, info
}

// emptyImporter resolves every import to an empty, complete package so
// the checker keeps going; selections through such packages simply
// fail to resolve.
type emptyImporter struct{}

func (emptyImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	pkg := types.NewPackage(path, path[strings.LastIndex(path, "/")+1:])
	pkg.MarkComplete()
	return pkg, nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
