package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// SentinelErr enforces the error-matching discipline the wrapped-error
// sentinels demand: ErrOverloaded, ErrPoolPoisoned, ErrTxnAborted,
// ErrTxnDeadline, ErrUnprepared, ErrTxnResolved and friends all cross
// wrapping boundaries (fmt.Errorf("...: %w", err), the mux wire's
// error re-hydration), so
//
//   - comparing a sentinel with == or != (including switch cases)
//     silently stops matching the moment anyone wraps the error:
//     use errors.Is;
//   - formatting a sentinel into a new error with %v or %s severs the
//     chain errors.Is needs: wrap with %w.
//
// Sentinels are recognized semantically where type information
// reaches (package-level error variables, own-package always, every
// package under go vet -vettool), with a syntactic Err[A-Z]* /EOF
// name fallback for cross-package references in tolerant mode.
var SentinelErr = &Analyzer{
	Name: "sentinelerr",
	Doc: "typed error sentinels must be matched with errors.Is (never ==/!=/switch-case) " +
		"and wrapped with %w (never %v/%s)",
	Run: runSentinelErr,
}

func runSentinelErr(pass *Pass) error {
	sentinels := collectSentinels(pass)

	isSentinel := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[e]; obj != nil {
				return sentinels[obj] || isErrorVar(obj)
			}
			return false
		case *ast.SelectorExpr:
			if obj := pass.Info.Uses[e.Sel]; obj != nil {
				return isErrorVar(obj)
			}
			// Unresolved cross-package reference: fall back to the
			// sentinel naming convention.
			if _, ok := e.X.(*ast.Ident); ok {
				return sentinelName(e.Sel.Name)
			}
			return false
		}
		return false
	}

	for _, f := range pass.Files {
		fmtName := ImportName(f, "fmt")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if isSentinel(side) {
						pass.Reportf(n.Pos(),
							"sentinel error compared with %s — wrapped errors will not match; use errors.Is",
							n.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				for _, cl := range n.Body.List {
					cc, ok := cl.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if isSentinel(e) {
							pass.Reportf(e.Pos(),
								"sentinel error in switch case compares with == — wrapped errors will not match; use errors.Is")
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, n, fmtName, isSentinel)
			}
			return true
		})
	}
	return nil
}

// collectSentinels gathers this package's package-level error
// variables initialized from errors.New / fmt.Errorf.
func collectSentinels(pass *Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pass.Files {
		errorsName := ImportName(f, "errors")
		fmtName := ImportName(f, "fmt")
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != len(vs.Values) {
					continue
				}
				for i, name := range vs.Names {
					call, ok := vs.Values[i].(*ast.CallExpr)
					if !ok {
						continue
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					x, ok := sel.X.(*ast.Ident)
					if !ok {
						continue
					}
					ctor := x.Name == errorsName && sel.Sel.Name == "New" ||
						x.Name == fmtName && sel.Sel.Name == "Errorf"
					if !ctor {
						continue
					}
					if obj := pass.Info.Defs[name]; obj != nil {
						out[obj] = true
					}
				}
			}
		}
	}
	return out
}

// isErrorVar reports whether obj is a package-level variable whose
// type is error or a concrete type implementing it (the solver's
// `var ErrTooLarge = errTooLarge{}` shape) — the resolved-type
// sentinel test.
func isErrorVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	t := v.Type()
	if t == nil {
		return false
	}
	if iface, ok := t.Underlying().(*types.Interface); ok {
		return iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
	}
	return implementsError(t)
}

// implementsError reports whether t (or *t) has an Error() string
// method.
func implementsError(t types.Type) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			m := ms.At(i).Obj()
			if m.Name() != "Error" {
				continue
			}
			sig, ok := m.Type().(*types.Signature)
			if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
				continue
			}
			if b, ok := sig.Results().At(0).Type().(*types.Basic); ok && b.Kind() == types.String {
				return true
			}
		}
	}
	return false
}

// sentinelName is the naming-convention fallback: ErrFoo / EOF.
func sentinelName(name string) bool {
	if name == "EOF" {
		return true
	}
	return strings.HasPrefix(name, "Err") && len(name) > 3 &&
		name[3] >= 'A' && name[3] <= 'Z'
}

// checkErrorfWrap flags fmt.Errorf calls that format a sentinel with
// a verb other than %w.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr, fmtName string, isSentinel func(ast.Expr) bool) {
	if fmtName == "" || len(call.Args) < 2 {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	if x, ok := sel.X.(*ast.Ident); !ok || x.Name != fmtName {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break
		}
		if verb != 'w' && isSentinel(call.Args[argIdx]) {
			pass.Reportf(call.Args[argIdx].Pos(),
				"sentinel error formatted with %%%c — the error chain is severed for errors.Is; wrap with %%w", verb)
		}
	}
}

// formatVerbs extracts the verb letters of a format string in
// argument order. It gives up (ok=false) on explicit argument indexes
// and * width/precision, which change the arg mapping.
func formatVerbs(format string) ([]rune, bool) {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if c == '[' || c == '*' {
				return nil, false
			}
			if strings.ContainsRune("+-# 0.0123456789", rune(c)) {
				i++
				continue
			}
			verbs = append(verbs, rune(c))
			break
		}
	}
	return verbs, true
}
