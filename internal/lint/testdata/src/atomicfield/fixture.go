// Fixture for the atomicfield analyzer: one mixed plain/atomic
// counter, one copied atomic-typed field, the value-base snapshot
// exemption and a directive-suppressed constructor read.
package fixa

import "sync/atomic"

type stats struct {
	calls int64
}

type server struct {
	st  stats
	gen atomic.Int64
}

func (s *server) bump() {
	atomic.AddInt64(&s.st.calls, 1)
}

// badRead mixes a plain read into the atomic field through a pointer
// base.
func badRead(s *server) int64 {
	return s.st.calls // want "non-atomic access to field calls"
}

// badCopy copies the atomic-typed field instead of calling a method.
func badCopy(s *server) int64 {
	g := s.gen // want "atomic-typed field gen"
	return g.Load()
}

// goodMethod and goodAddr are the legal atomic-typed accesses.
func goodMethod(s *server) int64 { return s.gen.Load() }

func goodAddr(s *server) *atomic.Int64 { return &s.gen }

// snapshot copies the counters out under atomic loads; readers of the
// by-value copy are exempt (the rpc.Transport.Stats idiom).
func (s *server) snapshot() stats {
	return stats{calls: atomic.LoadInt64(&s.st.calls)}
}

func useSnapshot(s *server) int64 {
	cp := s.snapshot()
	return cp.calls // value base: exempt, no diagnostic
}

// fresh reads the counter plainly before the object escapes; the
// directive carries the story.
func fresh() *server {
	s := &server{}
	//pyxlint:allow atomicfield -- object not yet escaped: constructor-local read
	if s.st.calls != 0 {
		panic("fresh server")
	}
	return s
}
