// Fixture for the latchorder analyzer's runtime hierarchy: the
// migration serializer (migMu) ranks above the map-epoch mutex
// (epochMu), because Migrator.Move holds migMu across a whole move
// and publishes the successor map — which takes epochMu — while still
// holding it. A path that takes them the other way around can
// deadlock a concurrent move. The structural rules (LatchAudit,
// DB-field, vacuity) are sqldb-only and must stay silent here.
package runtime

import "sync"

// Migrator mirrors the runtime's move serializer.
type Migrator struct {
	migMu sync.Mutex
}

// ShardedClient mirrors the runtime's epoch-publishing router.
type ShardedClient struct {
	epochMu sync.Mutex
}

// moveThenPublish follows the hierarchy: the move lock first, the
// epoch mutex inside it — the shape Migrator.Move actually has.
func moveThenPublish(m *Migrator, c *ShardedClient) {
	m.migMu.Lock()
	c.epochMu.Lock()
	c.epochMu.Unlock()
	m.migMu.Unlock()
}

// publishThenMove inverts it: holding the epoch mutex while starting
// a move deadlocks against a concurrent Move's publish.
func publishThenMove(m *Migrator, c *ShardedClient) {
	c.epochMu.Lock()
	m.migMu.Lock() // want "acquires migMu .rank 1. after epochMu"
	m.migMu.Unlock()
	c.epochMu.Unlock()
}
