// Fixture for the blockingcall analyzer: a miniature runtime package
// with wire calls, channel receives and selects under the epoch
// mutex, the allowlisted Migrator.Move shape, and the non-blocking /
// release-first / closure / directive shapes that must stay silent.
package runtime

import "sync"

// wire mirrors the mux client surface the runtime blocks on.
type wire struct{}

func (w *wire) Call(method string) error { return nil }
func (w *wire) MigCtl(op int) error      { return nil }

// Migrator mirrors the runtime's move serializer: Move holds migMu
// across wire round-trips by design, and BlockingCallAllow carries the
// story — the allowlist suppression case.
type Migrator struct {
	migMu sync.Mutex
	w     wire
}

func (m *Migrator) Move() error {
	m.migMu.Lock()
	defer m.migMu.Unlock()
	return m.w.MigCtl(1)
}

// router mirrors the epoch-publishing shard router.
type router struct {
	epochMu sync.Mutex
	w       wire
	updates chan int
}

// publishAndNotify parks on the wire and then on a channel while
// still holding the epoch mutex — both are findings.
func (r *router) publishAndNotify() {
	r.epochMu.Lock()
	r.w.Call("publish") // want "calls Call .a wire RPC. while holding epochMu"
	v := <-r.updates    // want "receives from a channel while holding epochMu"
	_ = v
	r.epochMu.Unlock()
}

// waitForUpdate parks in a default-less select under the latch.
func (r *router) waitForUpdate() {
	r.epochMu.Lock()
	defer r.epochMu.Unlock()
	select { // want "blocks in a select with no default while holding epochMu"
	case <-r.updates:
	}
}

// pollOnce is the non-blocking select shape: the default arm means
// the goroutine never parks, so holding the latch is fine.
func (r *router) pollOnce() {
	r.epochMu.Lock()
	defer r.epochMu.Unlock()
	select {
	case <-r.updates:
	default:
	}
}

// releaseFirst drops the latch before parking — the recommended fix,
// and the proof the held-tracking sees Unlock.
func (r *router) releaseFirst() {
	r.epochMu.Lock()
	r.epochMu.Unlock()
	_ = r.w.Call("publish")
	<-r.updates
}

// spawnNotifier only DEFINES the blocking closure while latched; the
// closure runs on its own goroutine with its own (empty) latch set.
func (r *router) spawnNotifier() {
	r.epochMu.Lock()
	defer r.epochMu.Unlock()
	go func() {
		<-r.updates
	}()
}

// probe is the directive-suppression case: the wire call under the
// latch is deliberate and the directive carries the story.
func (r *router) probe() {
	r.epochMu.Lock()
	defer r.epochMu.Unlock()
	//pyxlint:allow blockingcall -- startup-only: nothing contends epochMu until the first epoch publishes
	_ = r.w.Call("bootstrap")
}
