// Fixture for the releaseonerror analyzer: a pooled-frame Session in
// miniature, with one leaky error path, one defer-cleaned function,
// one fail-fast-only function and one directive-suppressed
// intentional leak.
package runtimefix

import "errors"

var errDegraded = errors.New("degraded")

var degraded bool

type frame struct{ slots []int }

// Session mirrors the runtime session's pooled-frame API.
type Session struct{ pool []*frame }

func (s *Session) newFrame() (*frame, error) { return &frame{}, nil }

func (s *Session) freeFrame(f *frame) { s.pool = append(s.pool, f) }

// leaky drops the frame on the degraded exit.
func leaky(s *Session) error {
	fr, err := s.newFrame() // want "may leak"
	if err != nil {
		return err
	}
	if degraded {
		return errDegraded
	}
	s.freeFrame(fr)
	return nil
}

// deferred is clean: the defer covers every exit.
func deferred(s *Session) error {
	fr, err := s.newFrame()
	if err != nil {
		return err
	}
	defer s.freeFrame(fr)
	if degraded {
		return errDegraded
	}
	return nil
}

// failFast is clean: the only early return is the fail-fast guard on
// the acquire's own error, where the frame is nil.
func failFast(s *Session) error {
	fr, err := s.newFrame()
	if err != nil {
		return err
	}
	s.freeFrame(fr)
	return nil
}

// pinned leaks on purpose; the directive carries the story.
func pinned(s *Session) error {
	//pyxlint:allow releaseonerror -- frame deliberately pinned for the process lifetime (warm-pool seed)
	fr, err := s.newFrame()
	if err != nil {
		return err
	}
	if degraded {
		return errDegraded
	}
	s.freeFrame(fr)
	return nil
}
