// Fixture for the releaseonerror analyzer: a pooled-frame Session in
// miniature, with one leaky error path, one defer-cleaned function,
// one fail-fast-only function and one directive-suppressed
// intentional leak.
package runtimefix

import "errors"

var errDegraded = errors.New("degraded")

var degraded bool

type frame struct{ slots []int }

// Session mirrors the runtime session's pooled-frame API.
type Session struct{ pool []*frame }

func (s *Session) newFrame() (*frame, error) { return &frame{}, nil }

func (s *Session) freeFrame(f *frame) { s.pool = append(s.pool, f) }

// leaky drops the frame on the degraded exit.
func leaky(s *Session) error {
	fr, err := s.newFrame() // want "may leak"
	if err != nil {
		return err
	}
	if degraded {
		return errDegraded
	}
	s.freeFrame(fr)
	return nil
}

// deferred is clean: the defer covers every exit.
func deferred(s *Session) error {
	fr, err := s.newFrame()
	if err != nil {
		return err
	}
	defer s.freeFrame(fr)
	if degraded {
		return errDegraded
	}
	return nil
}

// failFast is clean: the only early return is the fail-fast guard on
// the acquire's own error, where the frame is nil.
func failFast(s *Session) error {
	fr, err := s.newFrame()
	if err != nil {
		return err
	}
	s.freeFrame(fr)
	return nil
}

// DB mirrors the engine's migration-fence API: ArmFence blocks every
// writer of a warehouse range until the token is released (or the TTL
// lapses — which is exactly what a leaked token condemns writers to
// wait out).
type DB struct{ armed bool }

func (db *DB) ArmFence(lo, hi int64) (uint64, error) { db.armed = true; return 1, nil }

func (db *DB) ReleaseFence(token uint64, moved bool) error { db.armed = false; return nil }

// fenceLeaky arms the fence, then bails on the degraded exit without
// releasing: the moving range stays dark for the whole TTL.
func fenceLeaky(db *DB) error {
	token, err := db.ArmFence(1, 4) // want "may leak"
	if err != nil {
		return err
	}
	if degraded {
		return errDegraded
	}
	return db.ReleaseFence(token, true)
}

// fenceClean releases on both exits.
func fenceClean(db *DB) error {
	token, err := db.ArmFence(1, 4)
	if err != nil {
		return err
	}
	if degraded {
		_ = db.ReleaseFence(token, false)
		return errDegraded
	}
	return db.ReleaseFence(token, true)
}

// pinned leaks on purpose; the directive carries the story.
func pinned(s *Session) error {
	//pyxlint:allow releaseonerror -- frame deliberately pinned for the process lifetime (warm-pool seed)
	fr, err := s.newFrame()
	if err != nil {
		return err
	}
	if degraded {
		return errDegraded
	}
	s.freeFrame(fr)
	return nil
}
