// Fixture for the latchorder analyzer: a miniature sqldb package with
// one unaudited structural access, one latch-order inversion, one
// doc-story-audited function and one directive-suppressed probe.
package sqldb

import "sync"

// DB mirrors the engine's catalog shape. The fence plane lives in a
// nested struct, like the engine's fenceControl — a direct sync.Mutex
// field would trip the sharded-engine rule.
type DB struct {
	catMu  sync.RWMutex
	tables map[string]*Table
	fence  fenceControl
}

// fenceControl mirrors the engine's migration-fence plane.
type fenceControl struct {
	fenceMu sync.Mutex
}

// Table mirrors the engine's table shape (rows is a guarded
// structural field).
type Table struct {
	latch sync.RWMutex
	rows  []int
}

// rogue touches table structure with no latch story at all.
func rogue(t *Table) int {
	return len(t.rows) // want "without a latch story"
}

// blessed reads the catalog under the documented latch.
//
// latch: catMu read
func (db *DB) blessed(name string) *Table {
	db.catMu.RLock()
	defer db.catMu.RUnlock()
	return db.tables[name]
}

// inverted climbs the hierarchy backwards: table latch first, then
// the catalog latch.
func (db *DB) inverted(t *Table) {
	t.latch.Lock()
	db.catMu.Lock() // want "acquires catMu .rank 2. after latch"
	db.catMu.Unlock()
	t.latch.Unlock()
}

// fencedBackwards arms the fence plane below the catalog latch: the
// fence ranks ABOVE everything (ArmFence must never wait on a latch a
// fenced statement might hold).
func (db *DB) fencedBackwards() {
	db.catMu.Lock()
	db.fence.fenceMu.Lock() // want "acquires fenceMu .rank 1. after catMu"
	db.fence.fenceMu.Unlock()
	db.catMu.Unlock()
}

// probe is the suppression case: same shape as rogue, but the
// directive carries the story, so no diagnostic survives.
func probe(t *Table) int {
	//pyxlint:allow latchorder -- debug-only probe; the single-threaded harness owns the table
	return len(t.rows)
}
