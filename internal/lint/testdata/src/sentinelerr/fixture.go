// Fixture for the sentinelerr analyzer: ==/!= comparisons against an
// errors.New sentinel and a concrete-typed sentinel, a switch-case
// comparison, a %v wrap, the errors.Is good cases and a
// directive-suppressed identity check.
package fixs

import (
	"errors"
	"fmt"
)

var ErrGone = errors.New("fixs: gone")

type errTiny struct{}

func (errTiny) Error() string { return "fixs: tiny" }

// ErrTiny is a concrete-typed sentinel (the solver's ErrTooLarge
// shape) — no errors.New in sight, recognized by type.
var ErrTiny = errTiny{}

func badEq(err error) bool {
	return err == ErrGone // want "compared with =="
}

func badNeqTyped(err error) bool {
	return err != ErrTiny // want "compared with !="
}

func badSwitch(err error) int {
	switch err {
	case ErrGone: // want "switch case"
		return 1
	}
	return 0
}

func badWrap(err error) error {
	if errors.Is(err, ErrGone) {
		return fmt.Errorf("lookup: %v", ErrGone) // want "formatted with %v"
	}
	return nil
}

func goodIs(err error) bool {
	return errors.Is(err, ErrGone) || errors.Is(err, ErrTiny)
}

func goodWrap(err error) error {
	return fmt.Errorf("lookup: %w", err)
}

// exact really wants identity: the sentinel was returned unwrapped
// one frame below, and the directive says so.
func exact(err error) bool {
	//pyxlint:allow sentinelerr -- identity check on an unwrapped same-package return
	return err == ErrGone
}
