// Fixture for the staleallow analyzer's LatchOrderAllow audit, shaped
// like the engine's lock manager. releaseAll still shows the
// graphMu-then-stripe acquisition its allowlist entry excuses, so that
// entry is live; cancelWaits is gone entirely, so its entry names a
// function that no longer exists — reported at the package clause,
// where a missing function has no better anchor.
package sqldb // want "LatchOrderAllow entry ...lockManager..cancelWaits. names a function that no longer exists"

import "sync"

type lockStripe struct {
	mu sync.Mutex
}

type lockManager struct {
	graphMu sync.Mutex
	stripes [4]lockStripe
}

// releaseAll mirrors the real shape the allowlist excuses: the
// waits-for graph edges are dropped under graphMu BEFORE the stripe
// sweep, so the rank-6-then-rank-5 order can never deadlock — but the
// source-order scan still sees the inversion, which is exactly what
// keeps the entry non-stale.
func (lm *lockManager) releaseAll() {
	lm.graphMu.Lock()
	lm.graphMu.Unlock()
	for i := range lm.stripes {
		lm.stripes[i].mu.Lock()
		lm.stripes[i].mu.Unlock()
	}
}
