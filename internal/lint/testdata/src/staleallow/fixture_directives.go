// Fixture for the staleallow analyzer's directive audit: a live
// directive (sentinelerr really fires on the next line), a stale one
// (nothing to suppress), one naming an analyzer that does not exist,
// and the self-referential case the audit refuses to let a directive
// excuse.
package fixd

import "errors"

var ErrGone = errors.New("fixd: gone")

// exact carries a LIVE directive: the raw sentinelerr run reports the
// identity comparison on the covered line, so the directive stands.
func exact(err error) bool {
	//pyxlint:allow sentinelerr -- identity check on an unwrapped same-package return
	return err == ErrGone
}

// relic kept its directive after the comparison it excused was
// rewritten to errors.Is — the directive now suppresses nothing and
// would silently swallow the next real finding on that line.
func relic(err error) bool {
	//pyxlint:allow sentinelerr -- relic story from a deleted comparison // want "stale //pyxlint:allow: sentinelerr reports nothing"
	return errors.Is(err, ErrGone)
}

// typo names a pass that was never in the roster.
func typo(err error) bool {
	//pyxlint:allow sentinalerr -- misspelled analyzer name // want "unknown analyzer .sentinalerr."
	return errors.Is(err, ErrGone)
}

// meta tries to suppress the staleness audit itself; the audit skips
// such directives (deleting the stale exemption is always the fix),
// so this is neither honored nor reported.
func meta(err error) bool {
	//pyxlint:allow staleallow -- the audit cannot be self-certified
	return errors.Is(err, ErrGone)
}
