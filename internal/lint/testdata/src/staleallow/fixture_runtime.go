// Fixture for the staleallow analyzer's BlockingCallAllow audit: this
// Migrator.Move was refactored to release migMu before its wire
// round-trips, so the allowlist entry excusing the old
// block-while-latched shape no longer exempts anything.
package runtime

import "sync"

type wire struct{}

func (w *wire) MigCtl(op int) error { return nil }

type Migrator struct {
	migMu sync.Mutex
	w     wire
}

func (m *Migrator) Move() error { // want "BlockingCallAllow entry ...Migrator..Move. is stale"
	m.migMu.Lock()
	m.migMu.Unlock()
	return m.w.MigCtl(1)
}
