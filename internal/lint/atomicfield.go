package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// AtomicField enforces all-or-nothing atomicity per struct field: a
// field that is ever accessed through sync/atomic (atomic.AddInt64(&s.n),
// atomic.LoadUint32(&s.gen), ...) must never be read or written
// plainly anywhere in the package, and a field of an atomic.Int64-style
// type must only be touched through its methods (or have its address
// taken) — copying it smuggles out a torn, unsynchronized snapshot.
//
// One deliberate false-positive suppression is built in: plain access
// through a VALUE base is exempt. The repo's snapshot idiom copies
// counters out under atomic loads into a plain struct returned by
// value (rpc.Transport.Stats) and the copy's fields are then read
// freely; only access that can alias the shared object — a base
// reached through a pointer — is flagged. Intentional exceptions
// (e.g. reads inside a constructor before the object escapes) carry a
// //pyxlint:allow atomicfield directive.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "fields accessed via sync/atomic (or of atomic.X type) must never be " +
		"read/written non-atomically through a shared pointer",
	Run: runAtomicField,
}

// atomicFuncNames is the sync/atomic function surface that takes
// &struct.field.
var atomicFuncNames = buildAtomicFuncNames()

func buildAtomicFuncNames() map[string]bool {
	m := map[string]bool{}
	for _, op := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		for _, ty := range []string{"Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer"} {
			m[op+ty] = true
		}
	}
	return m
}

// atomicTypeNames is the method-based atomic wrapper surface.
var atomicTypeNames = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true, "Uint32": true,
	"Uint64": true, "Uintptr": true, "Pointer": true, "Value": true,
}

func runAtomicField(pass *Pass) error {
	// Phase 1: collect the atomically-accessed field set.
	atomicVia := map[types.Object]ast.Node{} // field object -> one atomic call site
	inAtomicArg := map[*ast.SelectorExpr]bool{}
	atomicTyped := map[types.Object]bool{}

	for _, f := range pass.Files {
		atomicName := ImportName(f, "sync/atomic")
		if atomicName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !atomicFuncNames[sel.Sel.Name] {
					return true
				}
				if x, ok := sel.X.(*ast.Ident); !ok || x.Name != atomicName {
					return true
				}
				if len(n.Args) == 0 {
					return true
				}
				addr, ok := n.Args[0].(*ast.UnaryExpr)
				if !ok {
					return true
				}
				fieldSel, ok := addr.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				inAtomicArg[fieldSel] = true
				if selection, ok := pass.Info.Selections[fieldSel]; ok && selection.Kind() == types.FieldVal {
					if _, seen := atomicVia[selection.Obj()]; !seen {
						atomicVia[selection.Obj()] = n
					}
				}
			case *ast.StructType:
				for _, fld := range n.Fields.List {
					if !isAtomicWrapperType(fld.Type, atomicName) {
						continue
					}
					for _, name := range fld.Names {
						if obj := pass.Info.Defs[name]; obj != nil {
							atomicTyped[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	if len(atomicVia) == 0 && len(atomicTyped) == 0 {
		return nil
	}

	// Phase 2: find plain accesses, with a parent stack so method
	// calls and address-taking on atomic-typed fields stay legal.
	type finding struct {
		pos   ast.Node
		field types.Object
		via   ast.Node // nil for atomic-typed fields
	}
	var findings []finding
	for _, f := range pass.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicArg[sel] {
				return
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return
			}
			obj := selection.Obj()
			if via, hot := atomicVia[obj]; hot {
				if baseThroughPointer(pass, sel) {
					findings = append(findings, finding{pos: sel, field: obj, via: via})
				}
				return
			}
			if atomicTyped[obj] {
				parent := parentNode(stack)
				switch p := parent.(type) {
				case *ast.SelectorExpr:
					if p.X == sel {
						return // s.f.Load() — method access
					}
				case *ast.UnaryExpr:
					return // &s.f — passing the atomic by pointer
				}
				findings = append(findings, finding{pos: sel, field: obj})
			}
		})
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].pos.Pos() < findings[j].pos.Pos() })
	for _, fi := range findings {
		if fi.via != nil {
			pass.Reportf(fi.pos.Pos(),
				"non-atomic access to field %s, which is accessed with sync/atomic at %s — mixed access is a data race",
				fi.field.Name(), pass.Fset.Position(fi.via.Pos()))
		} else {
			pass.Reportf(fi.pos.Pos(),
				"atomic-typed field %s used without calling a method on it — copying an atomic value is a data race",
				fi.field.Name())
		}
	}
	return nil
}

// isAtomicWrapperType matches atomic.Int64 and atomic.Pointer[T]
// style type expressions by the import's local name.
func isAtomicWrapperType(t ast.Expr, atomicName string) bool {
	if ix, ok := t.(*ast.IndexExpr); ok { // atomic.Pointer[T]
		t = ix.X
	}
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || !atomicTypeNames[sel.Sel.Name] {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == atomicName
}

// baseThroughPointer reports whether the selector's base chain passes
// through a pointer — i.e. the access can alias the shared object
// rather than a local by-value snapshot.
func baseThroughPointer(pass *Pass, sel *ast.SelectorExpr) bool {
	if s, ok := pass.Info.Selections[sel]; ok && s.Indirect() {
		return true
	}
	e := sel.X
	for {
		if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil {
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				return true
			}
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if s, ok := pass.Info.Selections[x]; ok && s.Indirect() {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			return true
		case *ast.Ident:
			obj := pass.Info.Uses[x]
			if obj == nil {
				return false
			}
			_, isPtr := obj.Type().Underlying().(*types.Pointer)
			return isPtr
		default:
			return false
		}
	}
}

// parentNode returns the innermost enclosing node (the stack's last
// entry is the node itself).
func parentNode(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// inspectWithStack is ast.Inspect with an ancestor stack.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(n, stack)
		return true
	})
}
