package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LatchOrder machine-checks the sqldb engine's latch discipline, the
// generalization of the bespoke go/types scanner that used to live in
// internal/sqldb/latch_audit_test.go:
//
//  1. Every function that touches table structure (Table.rows,
//     Table.free, Table.pk, Table.idxs) or the catalog (DB.tables)
//     must carry a named latch story: an entry in LatchAudit, or a
//     "latch:" line in its doc comment. Touch structure from a new
//     function and the analyzer fails until a human writes down which
//     latch makes it safe.
//  2. Latch acquisitions inside one function must follow that
//     package's hierarchy (latchHierarchies): for sqldb, fence plane
//     (fenceMu) → catalog (catMu) → table latch (latch) → row stripe
//     (rowLatch) → lock-manager stripe (mu) → waits-for graph
//     (graphMu); for runtime, migration serializer (migMu) → map-epoch
//     mutex (epochMu). A lower-ranked acquisition after a
//     higher-ranked one is an inversion that can deadlock, unless the
//     function is in LatchOrderAllow with a story explaining why it
//     cannot (e.g. the earlier latch is provably released first).
//  3. The DB struct must never regain a sync.Mutex field — the engine
//     stays sharded (nested lock planes like fenceControl carry their
//     own mutex and their own rank).
//
// The analyzer binds to the packages latchHierarchies names (the
// engine, the shard-routing runtime, and their analysistest
// fixtures); everywhere else it is a no-op. Rules 1 and 3 and the
// vacuity/staleness guards are sqldb-structural and stay sqldb-only.
// Test files are exempt from rules 1-2: tests poke structure
// deliberately under controlled single-session setups, and the race
// jobs watch them.
var LatchOrder = &Analyzer{
	Name: "latchorder",
	Doc: "enforce per-package latch hierarchies (sqldb: fence -> catalog -> table -> row stripe -> lock stripe -> graph; " +
		"runtime: migration -> map epoch) and the audited-allowlist rule for structural field access",
	Run: runLatchOrder,
}

// LatchAudit maps "(recv).func" to the latch that makes the
// function's structural accesses safe. It is THE allowlist — the one
// the old latch_audit_test.go carried — now shared by every driver
// (standalone pyxis-lint, go vet -vettool, and the sqldb wrapper
// test). Extend it (or give the function a "latch:" doc line) when a
// new function legitimately touches table structure.
var LatchAudit = map[string]string{
	// Catalog (DB.tables).
	"(*DB).createTable": "catMu exclusive",
	"(*DB).createIndex": "catMu read for lookup; table latch exclusive for the build",
	"(*DB).lookupTable": "catMu read",
	"(*DB).Snapshot":    "catMu read, then every table latch shared",

	// Table structure under the table latch.
	"(*Table).rowAt":           "caller holds table latch >= read; slot stripe inside",
	"(*Table).setRow":          "caller holds table latch >= read; slot stripe inside",
	"(*Table).NumRows":         "table latch shared",
	"(*Table).keyFor":          "reads only the immutable column layout of a caller-latched row",
	"(*Table).addToIndexes":    "caller holds table latch exclusive",
	"(*Table).dropFromIndexes": "caller holds table latch exclusive",

	// Statement execution; the latch is taken in execStmt/Query.
	"(*Session).execInsert": "table latch exclusive (suspended across lock waits, revalidated after)",
	"(*Session).execUpdate": "table latch exclusive if an indexed column is set, shared otherwise",
	"(*Session).execDelete": "table latch exclusive",
	"(*Session).execSelect": "shared latch on every FROM table",
	"(*Session).matchSlots": "caller's statement latch; rows via rowAt stripes",
	"(*Session).matchJoin":  "caller's statement latch; rows via rowAt stripes",
	"updateNeedsX":          "table latch >= read (index set stable while held)",
	"isIndexedCol":          "caller's statement latch >= read (reads index metadata)",
	"choosePath":            "caller's statement latch (reads index metadata)",

	// Transaction finalization.
	"(*DB).commit":   "exclusive latch on every table with freed slots",
	"(*DB).rollback": "exclusive latch on every table in the undo log",

	// Migration fence plane (rank above the catalog: never held
	// together with any table latch).
	"(*DB).ArmFence":     "fenceMu exclusive; no table latch taken while held",
	"(*DB).ReleaseFence": "fenceMu exclusive; no table latch taken while held",
}

// LatchOrderAllow exempts functions from the in-function acquisition
// order rule, each with the story for why the apparent inversion is
// safe.
var LatchOrderAllow = map[string]string{
	// A bare "acquireLock" entry used to sit here for the lock-wait
	// path; staleallow caught it as dead — the real function is the
	// method (*Session).acquireLock, which suspends every statement
	// latch before parking, so the ordered scan finds nothing to
	// exempt there in the first place.
	"(*lockManager).releaseAll": "graphMu is taken and released to drop the waits-for edges BEFORE the " +
		"stripe sweep starts; graphMu and a stripe mu are never held together",
	"(*lockManager).cancelWaits": "graphMu is taken and released to drop the waits-for edges BEFORE the " +
		"stripe sweep starts; graphMu and a stripe mu are never held together",
}

// latchStructuralFields lists the guarded fields per receiver type.
var latchStructuralFields = map[string]map[string]bool{
	"Table": {"rows": true, "free": true, "pk": true, "idxs": true},
	"DB":    {"tables": true},
}

// latchHierarchies orders each audited package's latch hierarchy top
// (lowest rank) to bottom (highest). The fence plane ranks above the
// catalog: ArmFence/ReleaseFence take fenceMu with no other latch
// held, and fenceGate's lazy-expiry path takes it before execStmt ever
// reaches the table latches. In runtime, Migrator.Move holds migMu
// across a whole move and publishes the successor map (epochMu) while
// holding it, so a path taking epochMu first could deadlock a
// concurrent move.
var latchHierarchies = map[string]map[string]int{
	"sqldb": {
		"fenceMu":  1,
		"catMu":    2,
		"latch":    3,
		"rowLatch": 4,
		"mu":       5,
		"graphMu":  6,
	},
	"runtime": {
		"migMu":   1,
		"epochMu": 2,
	},
}

// latchStoryDoc matches a "latch:" story line in a function's doc
// comment — the decentralized alternative to a LatchAudit entry.
var latchStoryDoc = regexp.MustCompile(`(?i)\blatch:\s*\S`)

func runLatchOrder(pass *Pass) error {
	if pass.Pkg == nil {
		return nil
	}
	ranks := latchHierarchies[pass.Pkg.Name()]
	if ranks == nil {
		return nil
	}
	order := hierarchyString(ranks)
	// Rules 1 and 3 and the vacuity/staleness guards inspect sqldb's
	// structural types; other audited packages get rule 2 only.
	structural := pass.Pkg.Name() == "sqldb"

	// Rule 3 first: it applies to test and non-test files alike.
	for _, f := range pass.Files {
		if !structural {
			break
		}
		syncName := ImportName(f, "sync")
		if syncName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != "DB" {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				if sel, ok := fld.Type.(*ast.SelectorExpr); ok {
					if x, ok := sel.X.(*ast.Ident); ok && x.Name == syncName && sel.Sel.Name == "Mutex" {
						pass.Reportf(fld.Pos(), "DB regained a sync.Mutex field (%v) — the engine must stay sharded", fld.Names)
					}
				}
			}
			return true
		})
	}

	resolved := 0
	liveFuncs := map[string]bool{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := funcKey(fd)
			liveFuncs[fn] = true
			audited := LatchAudit[fn] != "" ||
				(fd.Doc != nil && latchStoryDoc.MatchString(fd.Doc.Text()))

			// Rule 1: structural access sites need a latch story.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if !structural {
					return false
				}
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pass.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				resolved++
				recv := namedTypeName(selection.Recv())
				fields := latchStructuralFields[recv]
				if fields == nil || !fields[sel.Sel.Name] {
					return true
				}
				if !audited {
					pass.Reportf(sel.Pos(),
						"%s touches %s.%s without a latch story (add a LatchAudit entry or a \"latch:\" doc line)",
						fn, recv, sel.Sel.Name)
				}
				return true
			})

			// Rule 2: in-function acquisition order must go down the
			// hierarchy. Source order approximates path order; functions
			// that release before re-acquiring go in LatchOrderAllow with
			// their story.
			if _, exempt := LatchOrderAllow[fn]; exempt {
				continue
			}
			for _, viol := range latchOrderViolations(fd, ranks) {
				pass.Reportf(viol.pos,
					"%s acquires %s (rank %d) after %s (rank %d) — latch order is %s",
					fn, viol.field, viol.rank, viol.prevField, viol.prevRank, order)
			}
		}
	}

	// Vacuity guard, inherited from the old audit test: if the package
	// declares the guarded types but the (tolerant) type check resolved
	// no field selections at all, the audit would pass while seeing
	// nothing.
	if structural && guardedSomewhere(pass) && resolved == 0 {
		pass.Reportf(pass.Files[0].Pos(),
			"latch audit is vacuous: package declares guarded types but no field selection resolved — type check broke")
	}

	// Stale-entry rule (the old TestLatchAuditEntriesLive): once any
	// LatchAudit entry matches a live function — i.e. we are looking at
	// the package the allowlist describes, not a fixture — every entry
	// must.
	anyLive := false
	for fn := range LatchAudit {
		if liveFuncs[fn] {
			anyLive = true
			break
		}
	}
	if anyLive {
		for _, fn := range sortedKeys(LatchAudit) {
			if !liveFuncs[fn] {
				pass.Reportf(pass.Files[0].Pos(),
					"LatchAudit entry %q names a function that no longer exists", fn)
			}
		}
	}
	return nil
}

// hierarchyString renders a package's hierarchy as "a -> b -> c" in
// rank order — the fix-it hint the inversion diagnostic carries.
func hierarchyString(ranks map[string]int) string {
	names := make([]string, 0, len(ranks))
	for name := range ranks {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return ranks[names[i]] < ranks[names[j]] })
	return strings.Join(names, " -> ")
}

// latchOrderViolation is one rule-2 inversion found by the
// exemption-blind scan. runLatchOrder reports them for functions
// outside LatchOrderAllow; staleallow re-runs the scan for functions
// INSIDE it to prove each entry still exempts something.
type latchOrderViolation struct {
	pos              token.Pos
	field, prevField string
	rank, prevRank   int
}

// latchOrderViolations scans one function body for hierarchy
// inversions: a lower-ranked acquisition in source order after a
// higher-ranked one.
func latchOrderViolations(fd *ast.FuncDecl, ranks map[string]int) []latchOrderViolation {
	var out []latchOrderViolation
	maxRank, maxName := 0, ""
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		field, kind, ok := latchLockCall(n)
		if !ok || kind != latchAcquire {
			return true
		}
		rank := ranks[field]
		if rank == 0 {
			return true
		}
		if rank < maxRank {
			out = append(out, latchOrderViolation{
				pos: n.Pos(), field: field, rank: rank,
				prevField: maxName, prevRank: maxRank,
			})
			return true
		}
		if rank > maxRank {
			maxRank, maxName = rank, field
		}
		return true
	})
	return out
}

// latchLockCall kinds.
const (
	latchAcquire = iota
	latchRelease
)

// latchLockCall classifies n as a latch acquisition or release when it
// is a call of the form X.<field>.Lock() / RLock() / Unlock() /
// RUnlock(), possibly through an index expression (rowLatch[i],
// stripes[i].mu), returning the latch field name.
func latchLockCall(n ast.Node) (field string, kind int, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall {
		return "", 0, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = latchAcquire
	case "Unlock", "RUnlock":
		kind = latchRelease
	default:
		return "", 0, false
	}
	base := sel.X
	for {
		switch b := base.(type) {
		case *ast.IndexExpr:
			base = b.X
		case *ast.ParenExpr:
			base = b.X
		case *ast.SelectorExpr:
			return b.Sel.Name, kind, true
		case *ast.Ident:
			return b.Name, kind, true
		default:
			return "", 0, false
		}
	}
}

// guardedSomewhere reports whether the package declares any of the
// guarded type names with at least one guarded field.
func guardedSomewhere(pass *Pass) bool {
	for _, f := range pass.Files {
		found := false
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || latchStructuralFields[ts.Name.Name] == nil {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if latchStructuralFields[ts.Name.Name][name.Name] {
						found = true
					}
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// funcKey renders a FuncDecl as the "(recv).name" key the allowlists
// use.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	switch rt := recv.(type) {
	case *ast.StarExpr:
		if id, ok := rt.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	case *ast.Ident:
		return "(" + rt.Name + ")." + fd.Name.Name
	}
	return fd.Name.Name
}

// namedTypeName unwraps pointers to the receiver type's name.
func namedTypeName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}
