package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
)

// This file implements the `go vet -vettool` unit-checker protocol so
// pyxis-lint can run as a vet tool with FULL type information: cmd/go
// hands the tool a vet.cfg JSON naming the package's files plus
// export data for every dependency, and expects diagnostics on stderr
// with a non-zero exit. (golang.org/x/tools/go/analysis/unitchecker is
// the reference implementation; this is the same contract rebuilt on
// the standard library.)

// vetConfig mirrors cmd/go/internal/work.vetConfig.
type vetConfig struct {
	ID         string
	Compiler   string
	Dir        string
	ImportPath string
	GoVersion  string
	GoFiles    []string
	NonGoFiles []string

	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// UnitCheck runs analyzers over the single package described by the
// vet.cfg at cfgPath, returning surviving diagnostics. It always
// writes the (empty — the analyzers exchange no facts) vetx output
// file so cmd/go can cache the run.
func UnitCheck(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", cfgPath, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only invocation: cmd/go wants facts, we have none.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImp.Import(path)
	})

	info := &types.Info{
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	tcfg := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: typecheck %s: %w", cfg.ImportPath, err)
	}
	return runAnalyzers(fset, files, pkg, info, analyzers)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
