// Package lint turns the project's static-analysis machinery inward:
// where internal/analysis runs CFG/def-use/effect passes over PyxJ
// programs to partition them, this package runs go/analysis-style
// passes over the runtime's own Go source to machine-check the
// concurrency invariants that PRs 2-7 each re-audited by hand.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer,
// Pass, diagnostics, analysistest-style fixtures, a vet -vettool
// driver) but is built purely on the standard library's go/ast and
// go/types, because the build environment vendors no external
// modules. The trade-off is documented per analyzer: passes use full
// type information when the driver can supply it (go vet -vettool
// mode, where export data for every import is available) and degrade
// to the same tolerant own-package resolution the old
// sqldb latch-audit test used when it cannot (standalone and in-test
// runs), with syntactic fallbacks for cross-package references.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// An Analyzer describes one analysis pass and how to run it.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, the multichecker
	// roster and //pyxlint:allow directives.
	Name string
	// Doc is the one-paragraph description printed by the roster.
	Doc string
	// Run executes the pass, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass provides one analyzer run with a single package's syntax and
// (possibly partial) type information.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. Analyzers
// whose invariants only bind production code (latchorder: tests poke
// table structure deliberately under controlled setup) skip such
// positions.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// ImportName returns the local name under which file imports path, or
// "" when it does not. It is the syntactic anchor the analyzers use
// for stdlib packages (fmt, errors, sync, sync/atomic) so they work
// even when the type checker could not resolve imports.
func ImportName(file *ast.File, path string) string {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		return p[strings.LastIndex(p, "/")+1:]
	}
	return ""
}

// Analyzers returns the full roster, in the order the multichecker
// runs them.
func Analyzers() []*Analyzer {
	return []*Analyzer{LatchOrder, ReleaseOnError, AtomicField, SentinelErr, BlockingCall, StaleAllow}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// allowDirective matches suppression comments:
//
//	//pyxlint:allow <analyzer> -- <reason>
//
// A diagnostic is suppressed when such a comment (naming its analyzer,
// with a non-empty reason) sits on the diagnostic's line or the line
// directly above it — the same "no exemption without a written story"
// contract as the latch audit's allowlist.
var allowDirective = regexp.MustCompile(`^//pyxlint:allow\s+([a-z]+)\s+--\s+\S`)

// suppressedLines collects, per analyzer name, the set of file:line
// positions covered by //pyxlint:allow directives in the files.
func suppressedLines(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	sup := map[string]map[string]bool{}
	add := func(name, file string, line int) {
		if sup[name] == nil {
			sup[name] = map[string]bool{}
		}
		sup[name][fmt.Sprintf("%s:%d", file, line)] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				// The directive covers its own line and the next one, so
				// it works both trailing a statement and on its own line
				// above one.
				add(m[1], pos.Filename, pos.Line)
				add(m[1], pos.Filename, pos.Line+1)
			}
		}
	}
	return sup
}

// runAnalyzers executes the analyzers over one loaded package and
// returns the diagnostics that survive //pyxlint:allow suppression.
func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {

	sup := suppressedLines(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer: a, Fset: fset, Files: files,
			Pkg: pkg, Info: info, diags: &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range diags {
			if sup[a.Name][fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)] {
				continue
			}
			out = append(out, d)
		}
	}
	return out, nil
}
