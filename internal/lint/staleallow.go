package lint

import (
	"fmt"
	"go/ast"
)

// StaleAllow is the meta-analyzer: it audits the suppression machinery
// itself. Every exemption in this package is a standing IOU — a
// //pyxlint:allow directive or an allowlist entry that says "this
// finding is safe, here is why". When the code it excused changes, the
// IOU goes stale and silently widens the blind spot: a directive over
// a line that no longer triggers anything would also swallow a future,
// genuine finding on that line, and an allowlist entry for a function
// that no longer inverts anything would excuse a brand-new inversion
// added there tomorrow. StaleAllow flags both:
//
//  1. A //pyxlint:allow directive is stale when re-running the named
//     analyzer WITHOUT suppression produces no diagnostic on the
//     directive's line or the line below it (the two lines the
//     directive covers). Directives naming analyzers that do not
//     exist are flagged too — usually a typo that never suppressed
//     anything.
//
//  2. A LatchOrderAllow / BlockingCallAllow entry is stale when the
//     named function no longer exists, or exists but the
//     exemption-disabled scan finds no violation inside it to exempt.
//
// The allowlist audit binds to the packages latchHierarchies names and
// arms only when at least one entry matches a live function (the same
// guard latchorder's LatchAudit staleness rule uses), so fixture
// packages that merely reuse the package names stay quiet.
var StaleAllow = &Analyzer{
	Name: "staleallow",
	Doc: "flag //pyxlint:allow directives and LatchOrderAllow/BlockingCallAllow entries " +
		"that no longer suppress any finding",
}

// runStaleAllow re-runs the whole roster, which includes StaleAllow
// itself; binding Run in init breaks the initialization cycle.
func init() { StaleAllow.Run = runStaleAllow }

func runStaleAllow(pass *Pass) error {
	// Re-run every other analyzer RAW (runAnalyzers applies directive
	// suppression only after Run returns, so a fresh Run sees the
	// pre-suppression findings) and index them by file:line.
	raw := map[string]map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == StaleAllow.Name {
			continue
		}
		var diags []Diagnostic
		p := &Pass{
			Analyzer: a, Fset: pass.Fset, Files: pass.Files,
			Pkg: pass.Pkg, Info: pass.Info, diags: &diags,
		}
		if err := a.Run(p); err != nil {
			return fmt.Errorf("re-running %s: %w", a.Name, err)
		}
		for _, d := range diags {
			if raw[a.Name] == nil {
				raw[a.Name] = map[string]bool{}
			}
			raw[a.Name][fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)] = true
		}
	}

	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				name := m[1]
				if name == StaleAllow.Name {
					// A directive cannot excuse the staleness audit itself:
					// deleting the stale exemption is always the fix.
					continue
				}
				if Lookup(name) == nil {
					pass.Reportf(c.Pos(), "//pyxlint:allow names unknown analyzer %q — it suppresses nothing", name)
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				here := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				below := fmt.Sprintf("%s:%d", pos.Filename, pos.Line+1)
				if !raw[name][here] && !raw[name][below] {
					pass.Reportf(c.Pos(),
						"stale //pyxlint:allow: %s reports nothing on this line or the next — delete the directive",
						name)
				}
			}
		}
	}

	// Allowlist staleness: only meaningful in the packages whose
	// hierarchy the order/blocking scans bind to.
	if pass.Pkg == nil {
		return nil
	}
	ranks := latchHierarchies[pass.Pkg.Name()]
	if ranks == nil {
		return nil
	}
	live := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				live[funcKey(fd)] = fd
			}
		}
	}
	checkTable := func(table map[string]string, tableName string, violations func(*ast.FuncDecl) int) {
		anyLive := false
		for fn := range table {
			if live[fn] != nil {
				anyLive = true
				break
			}
		}
		if !anyLive {
			return // not the package the allowlist describes
		}
		for _, fn := range sortedKeys(table) {
			fd := live[fn]
			if fd == nil {
				pass.Reportf(pass.Files[0].Pos(),
					"%s entry %q names a function that no longer exists", tableName, fn)
				continue
			}
			if violations(fd) == 0 {
				pass.Reportf(fd.Pos(),
					"%s entry %q is stale: the exemption-disabled scan finds no violation to exempt — delete the entry",
					tableName, fn)
			}
		}
	}
	checkTable(LatchOrderAllow, "LatchOrderAllow", func(fd *ast.FuncDecl) int {
		return len(latchOrderViolations(fd, ranks))
	})
	checkTable(BlockingCallAllow, "BlockingCallAllow", func(fd *ast.FuncDecl) int {
		return len(blockingCallViolations(fd, ranks))
	})
	return nil
}
