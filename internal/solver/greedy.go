package solver

// Greedy is a local-search baseline: start from the all-APP partition
// and repeatedly flip the single node whose move most reduces the cut
// while keeping the load within budget, until no improving move
// remains. Used in the solver-quality ablation; it finds the obvious
// partitions but misses coordinated multi-node moves that min cut
// captures.
type Greedy struct {
	// MaxPasses bounds the improvement loop (0 = 1000).
	MaxPasses int
}

// Name implements Solver.
func (g *Greedy) Name() string { return "greedy-local" }

// Solve implements Solver.
func (g *Greedy) Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pinnedLoad(p) > p.Budget+1e-9 {
		return nil, ErrInfeasible
	}
	maxPasses := g.MaxPasses
	if maxPasses == 0 {
		maxPasses = 1000
	}

	assign := make([]bool, p.N)
	for i, pin := range p.Pin {
		assign[i] = pin == PinDB
	}
	adj := make([][]Edge, p.N)
	for _, e := range p.Edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], Edge{U: e.V, V: e.U, W: e.W})
	}
	obj, load := Evaluate(p, assign)

	// flipGain returns the cut-weight reduction of flipping node i.
	flipGain := func(i int) float64 {
		gain := 0.0
		for _, e := range adj[i] {
			if assign[e.V] != assign[i] {
				gain += e.W // currently cut, would heal
			} else {
				gain -= e.W // currently whole, would cut
			}
		}
		return gain
	}

	for pass := 0; pass < maxPasses; pass++ {
		bestI, bestGain := -1, 1e-12
		for i := 0; i < p.N; i++ {
			if p.Pin[i] != PinFree {
				continue
			}
			if !assign[i] && load+p.NodeWeight[i] > p.Budget+1e-9 {
				continue // can't move to DB
			}
			if gain := flipGain(i); gain > bestGain {
				bestI, bestGain = i, gain
			}
		}
		if bestI < 0 {
			break
		}
		if assign[bestI] {
			load -= p.NodeWeight[bestI]
		} else {
			load += p.NodeWeight[bestI]
		}
		assign[bestI] = !assign[bestI]
		obj -= bestGain
	}
	obj, load = Evaluate(p, assign)
	return &Solution{Assign: assign, Objective: obj, Load: load}, nil
}
