// Package solver solves the Pyxis partitioning problem (paper §4.3,
// Fig. 5): assign each node of the weighted partition graph to the
// application server (0) or database server (1), minimizing the total
// weight of cut edges subject to a budget on the summed weight of
// nodes assigned to the database.
//
// The paper delegates this Binary Integer Program to Gurobi/lpsolve.
// This package provides four interchangeable solvers:
//
//   - MinCutSolver: Lagrangian relaxation of the budget constraint;
//     each subproblem is an s-t min cut solved with Dinic's algorithm.
//     Fast and near-optimal; the production default.
//   - BranchBound: exact, for moderate instance sizes (used to verify
//     the others in tests and for small programs).
//   - Greedy: local-search baseline (ablation).
//   - The simplex LP (lp.go) computes the fractional relaxation, a
//     lower bound used in tests and diagnostics.
package solver

import (
	"errors"
	"fmt"
	"math"
)

// Pin values for Problem.Pin.
const (
	PinFree int8 = -1
	PinApp  int8 = 0
	PinDB   int8 = 1
)

// Edge is an undirected dependency with a cut cost.
type Edge struct {
	U, V int
	W    float64
}

// Problem is a partitioning instance. Same-placement groups are
// expected to be contracted into single nodes by the caller (the core
// partitioner does this), so every node is independent.
type Problem struct {
	N          int
	NodeWeight []float64 // load added to the DB if the node is placed there
	Budget     float64
	Pin        []int8
	Edges      []Edge
}

// Validate checks structural sanity.
func (p *Problem) Validate() error {
	if len(p.NodeWeight) != p.N || len(p.Pin) != p.N {
		return errors.New("solver: inconsistent problem arrays")
	}
	for _, e := range p.Edges {
		if e.U < 0 || e.U >= p.N || e.V < 0 || e.V >= p.N {
			return fmt.Errorf("solver: edge (%d,%d) out of range", e.U, e.V)
		}
		if e.W < 0 {
			return fmt.Errorf("solver: negative edge weight %g", e.W)
		}
	}
	return nil
}

// Solution is an assignment: Assign[i] == true places node i on the DB.
type Solution struct {
	Assign    []bool
	Objective float64 // total cut weight
	Load      float64 // total DB node weight
	Optimal   bool    // proven optimal (BranchBound only)
}

// Solver is a pluggable partitioning algorithm.
type Solver interface {
	Name() string
	Solve(p *Problem) (*Solution, error)
}

// Evaluate computes the objective and load of an assignment.
func Evaluate(p *Problem, assign []bool) (obj, load float64) {
	for _, e := range p.Edges {
		if assign[e.U] != assign[e.V] {
			obj += e.W
		}
	}
	for i, a := range assign {
		if a {
			load += p.NodeWeight[i]
		}
	}
	return obj, load
}

// Feasible reports whether an assignment satisfies pins and budget.
func Feasible(p *Problem, assign []bool) bool {
	for i, pin := range p.Pin {
		if pin == PinApp && assign[i] {
			return false
		}
		if pin == PinDB && !assign[i] {
			return false
		}
	}
	_, load := Evaluate(p, assign)
	return load <= p.Budget+1e-9
}

// pinnedLoad is the load already forced by PinDB nodes.
func pinnedLoad(p *Problem) float64 {
	l := 0.0
	for i, pin := range p.Pin {
		if pin == PinDB {
			l += p.NodeWeight[i]
		}
	}
	return l
}

// ErrInfeasible indicates no assignment satisfies pins and budget.
var ErrInfeasible = errors.New("solver: infeasible (pinned DB load exceeds budget)")

// allAppSolution returns the everything-on-APP solution (except PinDB
// nodes), the paper's budget-0 degenerate partition.
func allAppSolution(p *Problem) *Solution {
	assign := make([]bool, p.N)
	for i, pin := range p.Pin {
		assign[i] = pin == PinDB
	}
	obj, load := Evaluate(p, assign)
	return &Solution{Assign: assign, Objective: obj, Load: load}
}

// Inf is a capacity larger than any finite weight sum.
const Inf = math.MaxFloat64 / 4
