package solver

// dinic is a max-flow solver over a residual graph with float64
// capacities, used to compute s-t min cuts of the partition graph.
type dinic struct {
	n     int
	head  []int // adjacency list heads
	to    []int
	next  []int
	cap_  []float64
	level []int
	iter  []int
}

const flowEps = 1e-12

func newDinic(n int) *dinic {
	h := make([]int, n)
	for i := range h {
		h[i] = -1
	}
	return &dinic{n: n, head: h}
}

// addEdge inserts a directed edge u→v with capacity c (and its reverse
// residual with capacity rc — pass c for undirected cut edges).
func (d *dinic) addEdge(u, v int, c, rc float64) {
	d.to = append(d.to, v)
	d.cap_ = append(d.cap_, c)
	d.next = append(d.next, d.head[u])
	d.head[u] = len(d.to) - 1

	d.to = append(d.to, u)
	d.cap_ = append(d.cap_, rc)
	d.next = append(d.next, d.head[v])
	d.head[v] = len(d.to) - 1
}

func (d *dinic) bfs(s, t int) bool {
	d.level = make([]int, d.n)
	for i := range d.level {
		d.level[i] = -1
	}
	queue := []int{s}
	d.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := d.head[u]; e != -1; e = d.next[e] {
			if d.cap_[e] > flowEps && d.level[d.to[e]] < 0 {
				d.level[d.to[e]] = d.level[u] + 1
				queue = append(queue, d.to[e])
			}
		}
	}
	return d.level[t] >= 0
}

func (d *dinic) dfs(u, t int, f float64) float64 {
	if u == t {
		return f
	}
	for ; d.iter[u] != -1; d.iter[u] = d.next[d.iter[u]] {
		e := d.iter[u]
		v := d.to[e]
		if d.cap_[e] > flowEps && d.level[v] == d.level[u]+1 {
			got := d.dfs(v, t, minF(f, d.cap_[e]))
			if got > flowEps {
				d.cap_[e] -= got
				d.cap_[e^1] += got
				return got
			}
		}
	}
	return 0
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// maxflow computes the max s→t flow.
func (d *dinic) maxflow(s, t int) float64 {
	flow := 0.0
	for d.bfs(s, t) {
		d.iter = append([]int{}, d.head...)
		for {
			f := d.dfs(s, t, Inf)
			if f <= flowEps {
				break
			}
			flow += f
		}
	}
	return flow
}

// minCutSide returns which nodes remain reachable from s in the
// residual graph (the source side of the min cut).
func (d *dinic) minCutSide(s int) []bool {
	side := make([]bool, d.n)
	stack := []int{s}
	side[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for e := d.head[u]; e != -1; e = d.next[e] {
			if d.cap_[e] > flowEps && !side[d.to[e]] {
				side[d.to[e]] = true
				stack = append(stack, d.to[e])
			}
		}
	}
	return side
}
