package solver

import (
	"errors"
	"math"
)

// This file implements a dense primal simplex for linear programs in
// the inequality form
//
//	min c·x   s.t.  A·x ≤ b,  x ≥ 0,  b ≥ 0
//
// which is exactly the shape of the partition LP relaxation (all
// right-hand sides are 0, 1, or the budget). Since b ≥ 0 the slack
// basis is feasible and no phase-1 is needed; Bland's rule guarantees
// termination.

// ErrUnbounded reports an unbounded LP.
var ErrUnbounded = errors.New("solver: LP unbounded")

// ErrIterLimit reports that simplex hit its iteration cap.
var ErrIterLimit = errors.New("solver: LP iteration limit exceeded")

// SimplexSolve minimizes c·x subject to A·x ≤ b, x ≥ 0 (b ≥ 0
// required). Returns the optimal x and objective.
func SimplexSolve(c []float64, a [][]float64, b []float64, maxIter int) ([]float64, float64, error) {
	m, n := len(a), len(c)
	if maxIter == 0 {
		maxIter = 20000
	}
	for _, bi := range b {
		if bi < 0 {
			return nil, 0, errors.New("solver: SimplexSolve requires b >= 0")
		}
	}
	// Tableau: m rows × (n + m + 1) columns (vars, slacks, rhs).
	width := n + m + 1
	tab := make([][]float64, m)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, width)
		copy(tab[i], a[i])
		tab[i][n+i] = 1
		tab[i][width-1] = b[i]
	}
	// Cost row (reduced costs); minimize → keep c as-is and pick
	// entering columns with negative reduced cost.
	cost := make([]float64, width)
	copy(cost, c)
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	const eps = 1e-9
	for iter := 0; iter < maxIter; iter++ {
		// Entering variable: Bland's rule (lowest index with cost < 0).
		enter := -1
		for j := 0; j < n+m; j++ {
			if cost[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			x := make([]float64, n)
			obj := 0.0
			for i, bi := range basis {
				if bi < n {
					x[bi] = tab[i][width-1]
				}
			}
			for j := 0; j < n; j++ {
				obj += c[j] * x[j]
			}
			return x, obj, nil
		}
		// Leaving variable: min ratio, ties by Bland (lowest basis idx).
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > eps {
				ratio := tab[i][width-1] / tab[i][enter]
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return nil, 0, ErrUnbounded
		}
		// Pivot.
		piv := tab[leave][enter]
		row := tab[leave]
		for j := 0; j < width; j++ {
			row[j] /= piv
		}
		for i := 0; i < m; i++ {
			if i == leave {
				continue
			}
			f := tab[i][enter]
			if f == 0 {
				continue
			}
			for j := 0; j < width; j++ {
				tab[i][j] -= f * row[j]
			}
		}
		f := cost[enter]
		for j := 0; j < n+m; j++ {
			cost[j] -= f * row[j]
		}
		basis[leave] = enter
	}
	return nil, 0, ErrIterLimit
}

// LPRelaxation solves the fractional relaxation of the partitioning
// BIP (node variables in [0,1]). Its objective is a lower bound on the
// integer optimum; the fractional node values are also returned
// (indexed like Problem nodes). Pins are eliminated by substitution
// before the LP is formed:
//
//   - edge to a PinApp endpoint: the optimal edge variable equals n_v,
//     so its weight moves onto n_v's objective coefficient;
//   - edge to a PinDB endpoint: the optimal edge variable equals
//     1 − n_v, contributing w − w·n_v (constant + negative coeff);
//   - edges between two pins contribute a constant.
func LPRelaxation(p *Problem) (lower float64, x []float64, err error) {
	if err := p.Validate(); err != nil {
		return 0, nil, err
	}
	// Map free nodes to LP variables.
	varOf := make([]int, p.N)
	nFree := 0
	for i := 0; i < p.N; i++ {
		if p.Pin[i] == PinFree {
			varOf[i] = nFree
			nFree++
		} else {
			varOf[i] = -1
		}
	}
	pinVal := func(i int) float64 {
		if p.Pin[i] == PinDB {
			return 1
		}
		return 0
	}

	type freeEdge struct {
		u, v int // LP var indices
		w    float64
	}
	var fe []freeEdge
	nodeCost := make([]float64, nFree)
	constant := 0.0
	for _, e := range p.Edges {
		if e.W == 0 {
			continue
		}
		up, vp := p.Pin[e.U] != PinFree, p.Pin[e.V] != PinFree
		switch {
		case up && vp:
			if pinVal(e.U) != pinVal(e.V) {
				constant += e.W
			}
		case up: // U pinned, V free
			if pinVal(e.U) == 1 {
				constant += e.W
				nodeCost[varOf[e.V]] -= e.W
			} else {
				nodeCost[varOf[e.V]] += e.W
			}
		case vp: // V pinned, U free
			if pinVal(e.V) == 1 {
				constant += e.W
				nodeCost[varOf[e.U]] -= e.W
			} else {
				nodeCost[varOf[e.U]] += e.W
			}
		default:
			fe = append(fe, freeEdge{u: varOf[e.U], v: varOf[e.V], w: e.W})
		}
	}

	// Variables: n_0..n_{nFree-1}, e_0..e_{len(fe)-1}.
	nv := nFree + len(fe)
	c := make([]float64, nv)
	copy(c, nodeCost)
	for k, e := range fe {
		c[nFree+k] = e.w
	}
	var a [][]float64
	var b []float64
	row := func() []float64 { return make([]float64, nv) }
	for k, e := range fe {
		r1 := row()
		r1[e.u], r1[e.v], r1[nFree+k] = 1, -1, -1 // n_u - n_v - e <= 0
		a = append(a, r1)
		b = append(b, 0)
		r2 := row()
		r2[e.v], r2[e.u], r2[nFree+k] = 1, -1, -1
		a = append(a, r2)
		b = append(b, 0)
	}
	// Budget over free nodes: Σ w_i n_i <= B - pinnedLoad.
	rb := row()
	for i := 0; i < p.N; i++ {
		if varOf[i] >= 0 {
			rb[varOf[i]] = p.NodeWeight[i]
		}
	}
	remaining := p.Budget - pinnedLoad(p)
	if remaining < 0 {
		return 0, nil, ErrInfeasible
	}
	a = append(a, rb)
	b = append(b, remaining)
	// Upper bounds n_i <= 1 (needed because some costs are negative).
	for i := 0; i < nFree; i++ {
		r := row()
		r[i] = 1
		a = append(a, r)
		b = append(b, 1)
	}

	xx, obj, err := SimplexSolve(c, a, b, 0)
	if err != nil {
		return 0, nil, err
	}
	nodes := make([]float64, p.N)
	for i := 0; i < p.N; i++ {
		if varOf[i] >= 0 {
			nodes[i] = xx[varOf[i]]
		} else {
			nodes[i] = pinVal(i)
		}
	}
	return obj + constant, nodes, nil
}
