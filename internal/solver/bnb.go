package solver

import (
	"errors"
	"sort"
)

// BranchBound is an exact solver: depth-first branch and bound over
// node assignments. The bound is the cut weight already forced by
// decided edges; nodes are explored in descending order of incident
// edge weight so heavy edges are decided early. Exponential in the
// worst case — intended for the moderate program sizes Pyxis actually
// partitions (and for certifying MinCutSolver in tests).
type BranchBound struct {
	// MaxNodes caps the instance size (0 = 64). Larger instances
	// return ErrTooLarge so callers can fall back to MinCutSolver.
	MaxNodes int
	// MaxExpansions bounds the search (0 = unlimited). When exceeded,
	// the best incumbent found so far is returned with Optimal=false.
	MaxExpansions int64
}

// ErrTooLarge reports an instance beyond the exact solver's cap.
var ErrTooLarge = errTooLarge{}

type errTooLarge struct{}

func (errTooLarge) Error() string { return "solver: instance too large for exact branch & bound" }

// Name implements Solver.
func (b *BranchBound) Name() string { return "branch-and-bound" }

// Solve implements Solver.
func (b *BranchBound) Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxN := b.MaxNodes
	if maxN == 0 {
		maxN = 64
	}
	free := 0
	for _, pin := range p.Pin {
		if pin == PinFree {
			free++
		}
	}
	if free > maxN {
		return nil, ErrTooLarge
	}
	if pinnedLoad(p) > p.Budget+1e-9 {
		return nil, ErrInfeasible
	}

	// Start from the MinCut solution as the incumbent: tight incumbents
	// prune hard.
	mc, err := (&MinCutSolver{}).Solve(p)
	if err != nil {
		return nil, err
	}
	best := mc
	if mc.Optimal {
		return mc, nil
	}

	// Branch order: heaviest total incident weight first.
	incident := make([]float64, p.N)
	adj := make([][]Edge, p.N)
	for _, e := range p.Edges {
		incident[e.U] += e.W
		incident[e.V] += e.W
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], Edge{U: e.V, V: e.U, W: e.W})
	}
	var order []int
	for i := 0; i < p.N; i++ {
		if p.Pin[i] == PinFree {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(i, j int) bool { return incident[order[i]] > incident[order[j]] })

	assign := make([]bool, p.N)
	decided := make([]bool, p.N)
	for i, pin := range p.Pin {
		if pin != PinFree {
			decided[i] = true
			assign[i] = pin == PinDB
		}
	}
	load := pinnedLoad(p)
	// Cut cost among pinned nodes.
	cost := 0.0
	for _, e := range p.Edges {
		if decided[e.U] && decided[e.V] && assign[e.U] != assign[e.V] {
			cost += e.W
		}
	}

	var expansions int64
	truncated := false
	var rec func(k int, cost, load float64)
	rec = func(k int, cost, load float64) {
		if truncated || cost >= best.Objective-1e-12 {
			return
		}
		if b.MaxExpansions > 0 {
			expansions++
			if expansions > b.MaxExpansions {
				truncated = true
				return
			}
		}
		if k == len(order) {
			sol := &Solution{Assign: append([]bool{}, assign...), Objective: cost, Load: load}
			best = sol
			return
		}
		i := order[k]
		// Try APP then DB (APP never consumes budget).
		for _, side := range [2]bool{false, true} {
			if side && load+p.NodeWeight[i] > p.Budget+1e-9 {
				continue
			}
			delta := 0.0
			for _, e := range adj[i] {
				if decided[e.V] && assign[e.V] != side {
					delta += e.W
				}
			}
			assign[i] = side
			decided[i] = true
			extra := 0.0
			if side {
				extra = p.NodeWeight[i]
			}
			rec(k+1, cost+delta, load+extra)
			decided[i] = false
		}
	}
	rec(0, cost, load)
	out := &Solution{Assign: best.Assign, Objective: best.Objective, Load: best.Load, Optimal: !truncated}
	return out, nil
}

// Auto is the production solver: the exact branch and bound with a
// search budget on moderate instances, Lagrangian min cut on larger
// ones (the same division of labour the paper gets from invoking
// Gurobi with a time limit).
type Auto struct{}

// Name implements Solver.
func (Auto) Name() string { return "auto(bnb|mincut)" }

// Solve implements Solver.
func (Auto) Solve(p *Problem) (*Solution, error) {
	bb := &BranchBound{MaxNodes: 220, MaxExpansions: 2_000_000}
	sol, err := bb.Solve(p)
	if err == nil {
		return sol, nil
	}
	if errors.Is(err, ErrTooLarge) {
		return (&MinCutSolver{}).Solve(p)
	}
	return nil, err
}
