package solver

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce enumerates every assignment (exact oracle for tiny
// instances).
func bruteForce(p *Problem) *Solution {
	best := (*Solution)(nil)
	assign := make([]bool, p.N)
	var rec func(i int)
	rec = func(i int) {
		if i == p.N {
			if !Feasible(p, assign) {
				return
			}
			obj, load := Evaluate(p, assign)
			if best == nil || obj < best.Objective {
				best = &Solution{Assign: append([]bool{}, assign...), Objective: obj, Load: load}
			}
			return
		}
		assign[i] = false
		rec(i + 1)
		assign[i] = true
		rec(i + 1)
	}
	rec(0)
	return best
}

func randomProblem(rng *rand.Rand, n int) *Problem {
	p := &Problem{
		N:          n,
		NodeWeight: make([]float64, n),
		Pin:        make([]int8, n),
		Budget:     rng.Float64() * float64(n) * 2,
	}
	for i := 0; i < n; i++ {
		p.NodeWeight[i] = rng.Float64() * 3
		switch rng.Intn(6) {
		case 0:
			p.Pin[i] = PinApp
		case 1:
			p.Pin[i] = PinDB
		default:
			p.Pin[i] = PinFree
		}
	}
	// Guarantee feasibility: budget covers pinned-DB load.
	pinned := 0.0
	for i := range p.Pin {
		if p.Pin[i] == PinDB {
			pinned += p.NodeWeight[i]
		}
	}
	p.Budget += pinned
	ne := rng.Intn(n * 2)
	for k := 0; k < ne; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		p.Edges = append(p.Edges, Edge{U: u, V: v, W: rng.Float64() * 5})
	}
	return p
}

// TestBranchBoundMatchesBruteForce certifies the exact solver.
func TestBranchBoundMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bb := &BranchBound{}
	for trial := 0; trial < 200; trial++ {
		p := randomProblem(rng, 2+rng.Intn(8))
		want := bruteForce(p)
		got, err := bb.Solve(p)
		if want == nil {
			if err == nil {
				t.Fatalf("trial %d: expected infeasible, got %v", trial, got)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got.Objective-want.Objective) > 1e-9 {
			t.Fatalf("trial %d: bnb=%g brute=%g\nproblem=%+v", trial, got.Objective, want.Objective, p)
		}
		if !Feasible(p, got.Assign) {
			t.Fatalf("trial %d: bnb solution infeasible", trial)
		}
	}
}

// TestMinCutNearOptimal: the Lagrangian min-cut solution is feasible
// and its objective is within a small factor of the exact optimum on
// random instances (and exactly optimal when the unconstrained cut
// fits).
func TestMinCutNearOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mc := &MinCutSolver{}
	bb := &BranchBound{}
	exactCount, total := 0, 0
	for trial := 0; trial < 150; trial++ {
		p := randomProblem(rng, 2+rng.Intn(9))
		want, err := bb.Solve(p)
		if err != nil {
			continue
		}
		got, err := mc.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !Feasible(p, got.Assign) {
			t.Fatalf("trial %d: mincut solution infeasible (load=%g budget=%g)", trial, got.Load, p.Budget)
		}
		if got.Objective < want.Objective-1e-9 {
			t.Fatalf("trial %d: mincut %g beats exact %g — exact solver broken", trial, got.Objective, want.Objective)
		}
		total++
		if got.Objective <= want.Objective+1e-9 {
			exactCount++
		}
		if got.Optimal && math.Abs(got.Objective-want.Objective) > 1e-9 {
			t.Fatalf("trial %d: mincut claimed optimality at %g but exact is %g", trial, got.Objective, want.Objective)
		}
	}
	if exactCount*10 < total*7 {
		t.Errorf("mincut exact on only %d/%d instances; expected >= 70%%", exactCount, total)
	}
}

func TestGreedyFeasibleAndSane(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := &Greedy{}
	bb := &BranchBound{}
	for trial := 0; trial < 100; trial++ {
		p := randomProblem(rng, 2+rng.Intn(9))
		want, err := bb.Solve(p)
		if err != nil {
			continue
		}
		got, err := g.Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !Feasible(p, got.Assign) {
			t.Fatalf("trial %d: greedy infeasible", trial)
		}
		if got.Objective < want.Objective-1e-9 {
			t.Fatalf("trial %d: greedy %g beats exact %g", trial, got.Objective, want.Objective)
		}
	}
}

// TestLPLowerBound: the LP relaxation never exceeds the integer
// optimum.
func TestLPLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bb := &BranchBound{}
	for trial := 0; trial < 80; trial++ {
		p := randomProblem(rng, 2+rng.Intn(7))
		want, err := bb.Solve(p)
		if err != nil {
			continue
		}
		lower, x, err := LPRelaxation(p)
		if err != nil {
			t.Fatalf("trial %d: LP: %v", trial, err)
		}
		if lower > want.Objective+1e-6 {
			t.Fatalf("trial %d: LP bound %g exceeds integer optimum %g", trial, lower, want.Objective)
		}
		for i, xi := range x {
			if xi < -1e-9 || xi > 1+1e-9 {
				t.Fatalf("trial %d: x[%d]=%g out of [0,1]", trial, i, xi)
			}
			if p.Pin[i] == PinApp && xi > 1e-9 {
				t.Fatalf("trial %d: PinApp violated (x=%g)", trial, xi)
			}
			if p.Pin[i] == PinDB && xi < 1-1e-9 {
				t.Fatalf("trial %d: PinDB violated (x=%g)", trial, xi)
			}
		}
	}
}

// TestBudgetZeroDegenerate: with budget 0 every solver returns the
// all-APP partition (paper §4.3's degenerate case).
func TestBudgetZeroDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 3+rng.Intn(6))
		p.Budget = 0
		for i := range p.Pin {
			if p.Pin[i] == PinDB {
				p.Pin[i] = PinFree // make budget 0 feasible
			}
			if p.NodeWeight[i] == 0 {
				p.NodeWeight[i] = 0.1
			}
		}
		for _, s := range []Solver{&MinCutSolver{}, &BranchBound{}, &Greedy{}} {
			sol, err := s.Solve(p)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			for i, a := range sol.Assign {
				if a {
					t.Fatalf("%s: node %d on DB despite zero budget", s.Name(), i)
				}
			}
		}
	}
}

func TestInfeasiblePins(t *testing.T) {
	p := &Problem{
		N:          2,
		NodeWeight: []float64{5, 1},
		Budget:     1,
		Pin:        []int8{PinDB, PinFree},
	}
	for _, s := range []Solver{&MinCutSolver{}, &BranchBound{}, &Greedy{}} {
		if _, err := s.Solve(p); err == nil {
			t.Errorf("%s: expected infeasible error", s.Name())
		}
	}
}

func TestUnconstrainedIsPureMinCut(t *testing.T) {
	// A classic two-terminal cut: pins at the ends, chain of edges;
	// with infinite budget the solver must cut the cheapest edge.
	p := &Problem{
		N:          4,
		NodeWeight: []float64{1, 1, 1, 1},
		Budget:     100,
		Pin:        []int8{PinApp, PinFree, PinFree, PinDB},
		Edges: []Edge{
			{U: 0, V: 1, W: 5},
			{U: 1, V: 2, W: 1}, // cheapest: the cut should land here
			{U: 2, V: 3, W: 7},
		},
	}
	sol, err := (&MinCutSolver{}).Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 1 {
		t.Fatalf("objective = %g, want 1", sol.Objective)
	}
	want := []bool{false, false, true, true}
	for i := range want {
		if sol.Assign[i] != want[i] {
			t.Fatalf("assign = %v, want %v", sol.Assign, want)
		}
	}
	if !sol.Optimal {
		t.Error("unconstrained fit should be flagged optimal")
	}
}

func TestSimplexBasics(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  (min -x-y)
	x, obj, err := SimplexSolve(
		[]float64{-1, -1},
		[][]float64{{1, 2}, {3, 1}},
		[]float64{4, 6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj-(-2.8)) > 1e-9 {
		t.Fatalf("obj = %g, want -2.8", obj)
	}
	if math.Abs(x[0]-1.6) > 1e-9 || math.Abs(x[1]-1.2) > 1e-9 {
		t.Fatalf("x = %v, want [1.6 1.2]", x)
	}

	// Unbounded: min -x with no constraints on x.
	_, _, err = SimplexSolve([]float64{-1}, [][]float64{{0}}, []float64{1}, 0)
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("want ErrUnbounded, got %v", err)
	}
}

// Property: simplex optimum is no worse than any random feasible point.
func TestSimplexDominatesRandomFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 2+rng.Intn(3), 2+rng.Intn(3)
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64()*4 - 1
		}
		a := make([][]float64, m)
		b := make([]float64, m)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.Float64() * 2
			}
			b[i] = rng.Float64() * 5
		}
		// Bound the polytope so negative costs stay bounded.
		for j := 0; j < n; j++ {
			r := make([]float64, n)
			r[j] = 1
			a = append(a, r)
			b = append(b, 10)
		}
		x, obj, err := SimplexSolve(c, a, b, 0)
		if err != nil {
			return false
		}
		_ = x
		// Sample feasible points; none may beat the simplex objective.
		for trial := 0; trial < 50; trial++ {
			pt := make([]float64, n)
			for j := range pt {
				pt[j] = rng.Float64() * 2
			}
			feas := true
			for i := range a {
				s := 0.0
				for j := range pt {
					s += a[i][j] * pt[j]
				}
				if s > b[i]+1e-9 {
					feas = false
					break
				}
			}
			if !feas {
				continue
			}
			v := 0.0
			for j := range pt {
				v += c[j] * pt[j]
			}
			if v < obj-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDinicClassic(t *testing.T) {
	// Known max-flow instance: s=0, t=5.
	d := newDinic(6)
	add := func(u, v int, c float64) { d.addEdge(u, v, c, 0) }
	add(0, 1, 16)
	add(0, 2, 13)
	add(1, 2, 10)
	add(2, 1, 4)
	add(1, 3, 12)
	add(3, 2, 9)
	add(2, 4, 14)
	add(4, 3, 7)
	add(3, 5, 20)
	add(4, 5, 4)
	if got := d.maxflow(0, 5); math.Abs(got-23) > 1e-9 {
		t.Fatalf("maxflow = %g, want 23", got)
	}
	side := d.minCutSide(0)
	if !side[0] || side[5] {
		t.Error("cut side must contain s and exclude t")
	}
}

func TestBranchBoundTooLarge(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(1)), 40)
	for i := range p.Pin {
		p.Pin[i] = PinFree
	}
	bb := &BranchBound{MaxNodes: 10}
	if _, err := bb.Solve(p); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}
