package solver

// MinCutSolver solves the budgeted partitioning problem by Lagrangian
// relaxation: the budget constraint is moved into the objective with a
// multiplier λ, turning each subproblem into a plain s-t min cut
//
//	min  Σ_cut w(e) + λ·Σ_{i on DB} w(i)
//
// solved exactly by max-flow. λ = 0 ignores load (push everything
// profitable to the DB); λ → ∞ forces the all-APP partition. A
// bisection over λ finds the cheapest cut whose load fits the budget.
// Lagrangian duality can leave a gap on knapsack-like instances, so
// the result is near-optimal rather than certified; BranchBound
// (exact) cross-checks it in tests.
type MinCutSolver struct {
	// Iters is the number of bisection steps (default 48).
	Iters int
}

// Name implements Solver.
func (m *MinCutSolver) Name() string { return "mincut-lagrangian" }

// Solve implements Solver.
func (m *MinCutSolver) Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if pinnedLoad(p) > p.Budget+1e-9 {
		return nil, ErrInfeasible
	}
	iters := m.Iters
	if iters == 0 {
		iters = 48
	}

	best := allAppSolution(p) // always feasible given the pin check

	try := func(lambda float64) *Solution {
		sol := m.cutAt(p, lambda)
		if sol.Load <= p.Budget+1e-9 && sol.Objective < best.Objective-1e-12 {
			best = sol
		}
		return sol
	}

	if sol := try(0); sol.Load <= p.Budget+1e-9 {
		// The unconstrained min cut already fits: it is globally optimal.
		best.Optimal = true
		return best, nil
	}

	// Find an upper λ that forces feasibility.
	lo, hi := 0.0, 1e-12
	for i := 0; i < 80; i++ {
		sol := try(hi)
		if sol.Load <= p.Budget+1e-9 {
			break
		}
		lo = hi
		hi *= 8
	}
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		sol := try(mid)
		if sol.Load <= p.Budget+1e-9 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return best, nil
}

// cutAt solves the λ-relaxed problem exactly via min cut. Convention:
// source s is APP, sink t is DB; a node on the sink side is assigned
// to the database.
func (m *MinCutSolver) cutAt(p *Problem, lambda float64) *Solution {
	s, t := p.N, p.N+1
	d := newDinic(p.N + 2)
	for i := 0; i < p.N; i++ {
		switch p.Pin[i] {
		case PinApp:
			d.addEdge(s, i, Inf, 0)
		case PinDB:
			d.addEdge(i, t, Inf, 0)
		}
		// Placing node i on the DB costs λ·w_i: cutting the s→i arc.
		if w := lambda * p.NodeWeight[i]; w > 0 {
			d.addEdge(s, i, w, 0)
		}
	}
	for _, e := range p.Edges {
		if e.W > 0 {
			d.addEdge(e.U, e.V, e.W, e.W)
		}
	}
	d.maxflow(s, t)
	side := d.minCutSide(s)

	assign := make([]bool, p.N)
	for i := 0; i < p.N; i++ {
		assign[i] = !side[i] // sink side = DB
	}
	obj, load := Evaluate(p, assign)
	return &Solution{Assign: assign, Objective: obj, Load: load}
}
