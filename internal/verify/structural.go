package verify

import "pyxis/internal/compile"

// structural checks control-flow well-formedness and table
// consistency: block IDs dense, every terminator valid with in-range
// targets, the Methods map and MethodList agreeing (including each
// MethodInfo.Idx, which the v1 transfer codec ships instead of the
// qname), call arities, and every SQLID resolving to its instruction's
// SQL text in Program.SQLTable (the prepared-statement wire sends only
// the ID, so a stale ID executes the wrong statement remotely).
func (v *checker) structural() {
	p := v.p

	if len(p.Methods) != len(p.MethodList) {
		v.addf(CheckStructural, nil, compile.NoBlock,
			"Methods map has %d entries, MethodList has %d", len(p.Methods), len(p.MethodList))
	}
	for i, m := range p.MethodList {
		if m == nil {
			v.addf(CheckStructural, nil, compile.NoBlock, "MethodList[%d] is nil", i)
			continue
		}
		if m.Idx != i {
			v.addf(CheckStructural, m, compile.NoBlock,
				"MethodInfo.Idx is %d but the method sits at MethodList[%d] — transfer frames would resolve the wrong method", m.Idx, i)
		}
		if p.Methods[m.QName] != m {
			v.addf(CheckStructural, m, compile.NoBlock,
				"Methods[%q] does not point back at the MethodList entry", m.QName)
		}
		if !v.validBlock(m.Entry) {
			v.addf(CheckStructural, m, compile.NoBlock,
				"entry b%d is outside the %d-block program", m.Entry, len(p.Blocks))
		}
	}

	for id, b := range p.Blocks {
		if b == nil {
			v.addf(CheckStructural, nil, compile.BlockID(id), "block is nil")
			continue
		}
		if b.ID != compile.BlockID(id) {
			v.addf(CheckStructural, nil, compile.BlockID(id),
				"block at index %d carries ID b%d — the runtime fetches blocks by index", id, b.ID)
		}
		v.structuralTerm(b)
		for i := range b.Code {
			in := &b.Code[i]
			if in.Op > compile.OpSendNative {
				v.addf(CheckStructural, nil, b.ID, "instr %d has unknown opcode %d", i, in.Op)
			}
			if in.Op == compile.OpDBQuery || in.Op == compile.OpDBExec {
				switch {
				case int(in.SQLID) < 0 || int(in.SQLID) >= len(p.SQLTable):
					v.addf(CheckStructural, nil, b.ID,
						"instr %d names sql statement #%d outside the %d-entry SQLTable", i, in.SQLID, len(p.SQLTable))
				case p.SQLTable[in.SQLID] != in.SQL:
					v.addf(CheckStructural, nil, b.ID,
						"instr %d: sql statement #%d resolves to %q but the instruction carries %q — the prepared wire would execute the wrong statement",
						i, in.SQLID, p.SQLTable[in.SQLID], in.SQL)
				}
			}
		}
	}
}

// structuralTerm validates one block's terminator: a known kind, every
// jump/continuation target in range, and calls naming a method from
// the program's own tables with receiver+params arity.
func (v *checker) structuralTerm(b *compile.Block) {
	t := &b.Term
	switch t.Kind {
	case compile.TGoto:
		if !v.validBlock(t.Target) {
			v.addf(CheckStructural, nil, b.ID, "goto targets b%d outside the %d-block program", t.Target, len(v.p.Blocks))
		}
	case compile.TIf:
		if !v.validBlock(t.Then) {
			v.addf(CheckStructural, nil, b.ID, "if-then targets b%d outside the %d-block program", t.Then, len(v.p.Blocks))
		}
		if !v.validBlock(t.Else) {
			v.addf(CheckStructural, nil, b.ID, "if-else targets b%d outside the %d-block program", t.Else, len(v.p.Blocks))
		}
	case compile.TCall:
		if !v.validBlock(t.Cont) {
			v.addf(CheckStructural, nil, b.ID, "call continuation targets b%d outside the %d-block program", t.Cont, len(v.p.Blocks))
		}
		switch m := t.Method; {
		case m == nil:
			v.addf(CheckStructural, nil, b.ID, "call names no method")
		case v.p.Methods[m.QName] != m:
			v.addf(CheckStructural, nil, b.ID,
				"call names method %s which is not in the program's tables", m.QName)
		case len(t.Args) != 1+len(m.Params):
			v.addf(CheckStructural, nil, b.ID,
				"call to %s passes %d args; receiver+%d params expected", m.QName, len(t.Args), len(m.Params))
		}
	case compile.TRet:
		// Val range is frame-relative; slotBounds checks it.
	default:
		v.addf(CheckStructural, nil, b.ID, "block ends in unknown terminator kind %d", t.Kind)
	}
}
