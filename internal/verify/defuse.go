package verify

import (
	"fmt"
	"strings"

	"pyxis/internal/compile"
)

// defUse proves, per method, that no slot is read on any path before
// it is written. This is the invariant the v1 transfer decoder leans
// on when it zero-fills dead slots: a slot the liveness masks dropped
// is only safe to zero because every path writes it before reading it.
//
// The analysis is a forward must-defined fixpoint: a slot is defined
// at a point iff it is defined on EVERY path reaching that point
// (intersection over predecessors). At a method's entry exactly the
// receiver and parameter slots are defined — the runtime copies
// receiver+args into slots 0..len(Params) before the entry block runs.
// The TCall edge into the continuation additionally defines RetSlot,
// which the runtime writes with the return value before resuming.
func (v *checker) defUse() {
	for _, m := range v.p.MethodList {
		v.defUseMethod(m)
	}
}

func (v *checker) defUseMethod(m *compile.MethodInfo) {
	entryDefined := map[int]bool{}
	for s := 0; s <= len(m.Params) && s < m.NSlots; s++ {
		entryDefined[s] = true
	}

	// Fixpoint: in[b] = ∩ over predecessor edges of (out of pred +
	// edge-defined slot). Blocks start unvisited (⊤); the worklist
	// seeds at the entry.
	in := map[compile.BlockID]map[int]bool{m.Entry: cloneSet(entryDefined)}
	work := []compile.BlockID{m.Entry}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		b := v.p.Blocks[id]
		out := cloneSet(in[id])
		for i := range b.Code {
			defs, _ := opEffect(&b.Code[i])
			for _, s := range defs {
				out[s] = true
			}
		}
		for _, e := range succEdges(b) {
			eout := out
			if e.defines >= 0 {
				eout = cloneSet(out)
				eout[e.defines] = true
			}
			cur, seen := in[e.to]
			if !seen {
				in[e.to] = cloneSet(eout)
				work = append(work, e.to)
				continue
			}
			if intersectInto(cur, eout) {
				work = append(work, e.to)
			}
		}
	}

	// Report pass: scan each reached block with its fixpoint in-set and
	// flag the first undefined read per (block, slot), naming a path
	// from the entry along which the slot is never written.
	for _, id := range v.methodBlockIDs(m) {
		cur, reached := in[id]
		if !reached {
			continue
		}
		cur = cloneSet(cur)
		b := v.p.Blocks[id]
		flagged := map[int]bool{}
		flag := func(s int, what string) {
			if cur[s] || flagged[s] {
				return
			}
			flagged[s] = true
			v.addf(CheckDefUse, m, id, "slot %d is read by %s before any write; undefined along %s",
				s, what, v.undefinedPath(m, entryDefined, id, s))
		}
		for i := range b.Code {
			defs, uses := opEffect(&b.Code[i])
			for _, s := range uses {
				flag(s, fmt.Sprintf("instr %d (%s)", i, opName(b.Code[i].Op)))
			}
			for _, s := range defs {
				cur[s] = true
			}
		}
		for _, s := range termUses(&b.Term) {
			flag(s, "the terminator")
		}
	}
}

// undefinedPath finds an entry→use path along which slot s is never
// written, rendered "b0 -> b3 -> b7" for the diagnostic. BFS over
// blocks, traversing an edge only when neither the block's code nor
// the edge itself defines s.
func (v *checker) undefinedPath(m *compile.MethodInfo, entryDefined map[int]bool, use compile.BlockID, s int) string {
	if entryDefined[s] {
		return "an interior path (the entry defines the slot)"
	}
	parent := map[compile.BlockID]compile.BlockID{m.Entry: compile.NoBlock}
	queue := []compile.BlockID{m.Entry}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if id == use {
			var rev []compile.BlockID
			for at := id; at != compile.NoBlock; at = parent[at] {
				rev = append(rev, at)
			}
			parts := make([]string, len(rev))
			for i := range rev {
				parts[i] = fmt.Sprintf("b%d", rev[len(rev)-1-i])
			}
			return strings.Join(parts, " -> ")
		}
		b := v.p.Blocks[id]
		defines := false
		for i := range b.Code {
			defs, _ := opEffect(&b.Code[i])
			for _, d := range defs {
				if d == s {
					defines = true
				}
			}
		}
		if defines {
			continue
		}
		for _, e := range succEdges(b) {
			if e.defines == s {
				continue
			}
			if _, seen := parent[e.to]; seen {
				continue
			}
			parent[e.to] = id
			queue = append(queue, e.to)
		}
	}
	return "an unreconstructed path"
}

func cloneSet(set map[int]bool) map[int]bool {
	out := make(map[int]bool, len(set))
	for s := range set {
		out[s] = true
	}
	return out
}

// intersectInto removes from dst every slot absent from src, reporting
// whether dst changed.
func intersectInto(dst, src map[int]bool) bool {
	changed := false
	for s := range dst {
		if !src[s] {
			delete(dst, s)
			changed = true
		}
	}
	return changed
}
