// Package verify is the independent static checker for compiled block
// programs: it re-derives, from scratch, every fact the runtime trusts
// the compiler about — control-flow well-formedness, def-before-use,
// the per-block liveness masks the v1 transfer codec ships, the
// legality of every control-transfer resume point, and placement
// sanity — and rejects any program where the re-derivation disagrees.
//
// The point is independence: internal/compile's forward passes
// (Compile, Fuse, computeLiveness) produce these facts; a bug there —
// a fusion rewrite that drops a live slot from a LiveIn bitset —
// manifests not as a test failure but as silent data corruption on the
// remote peer, because the wire ships only the slots the bitset claims
// are live and the decoder zero-fills the rest. This package shares no
// code with those passes: it has its own instruction use/def model
// (opEffect), its own successor walk, its own forward must-defined and
// backward liveness fixpoints, so a compiler bug and a verifier bug
// have to coincide before a bad program gets through.
//
// The verifier registers itself with compile.RegisterVerifier at init,
// so every compile.Compile in a binary that links this package is
// checked by default (opt out per-call with compile.NoVerify(), or
// per-System with pyxis.System.NoVerify). pyxis.Partition additionally
// re-verifies after Fuse, and cmd/pyxisc -verify prints the
// diagnostics with disassembled block context.
package verify

import (
	"fmt"
	"sort"
	"strings"

	"pyxis/internal/compile"
	"pyxis/internal/pdg"
)

func init() { compile.RegisterVerifier(Program) }

// Check classes, in the order they run. Structural failures abort the
// run (dataflow over dangling targets proves nothing).
const (
	CheckStructural = "structural"
	CheckDefUse     = "defuse"
	CheckLiveness   = "liveness"
	CheckTransfer   = "transfer"
	CheckPlacement  = "placement"
)

// Diag is one verifier finding.
type Diag struct {
	Check  string          // which check class fired (Check* constants)
	Method string          // owning method's qname ("" = program-level)
	Block  compile.BlockID // offending block (compile.NoBlock = n/a)
	Msg    string
}

func (d Diag) String() string {
	var b strings.Builder
	b.WriteString(d.Check)
	if d.Method != "" {
		fmt.Fprintf(&b, ": %s", d.Method)
	}
	if d.Block != compile.NoBlock {
		fmt.Fprintf(&b, ": b%d", d.Block)
	}
	fmt.Fprintf(&b, ": %s", d.Msg)
	return b.String()
}

// Program runs every check over p and returns an error carrying the
// diagnostics when any fail. This is the function compile.Compile runs
// by default.
func Program(p *compile.Program) error {
	ds := Diagnostics(p)
	if len(ds) == 0 {
		return nil
	}
	msgs := make([]string, 0, len(ds)+1)
	for i, d := range ds {
		if i == 8 {
			msgs = append(msgs, fmt.Sprintf("... and %d more", len(ds)-i))
			break
		}
		msgs = append(msgs, d.String())
	}
	return fmt.Errorf("verify: %d finding(s):\n  %s", len(ds), strings.Join(msgs, "\n  "))
}

// Diagnostics runs every check over p and returns the findings in
// deterministic order (check order, then method order, then block
// order). An empty slice means the program verified clean.
func Diagnostics(p *compile.Program) []Diag {
	v := &checker{p: p}
	v.structural()
	if len(v.diags) > 0 {
		// A structurally broken program has dangling targets or
		// inconsistent tables; the dataflow checks would chase them into
		// panics or nonsense. Report the structural findings alone.
		return v.diags
	}
	v.assignMethods()
	v.slotBounds()
	if len(v.diags) > 0 {
		// Out-of-range slots would index outside the dataflow sets.
		return v.diags
	}
	v.placement()
	v.defUse()
	v.liveness()
	v.transfers()
	return v.diags
}

type checker struct {
	p     *compile.Program
	diags []Diag
	// methodOf[id] is the method whose frame executes block id, derived
	// by walking each method's entry without entering callees. nil for
	// blocks no method reaches (dead scaffolding pre-fusion).
	methodOf []*compile.MethodInfo
	// liveIn[id] is the independently recomputed live-in slot set,
	// filled by the liveness check and reused by the transfer check.
	liveIn []map[int]bool
}

func (v *checker) addf(check string, m *compile.MethodInfo, b compile.BlockID, format string, args ...any) {
	q := ""
	if m != nil {
		q = m.QName
	}
	v.diags = append(v.diags, Diag{Check: check, Method: q, Block: b, Msg: fmt.Sprintf(format, args...)})
}

func (v *checker) validBlock(id compile.BlockID) bool {
	return id >= 0 && int(id) < len(v.p.Blocks)
}

// succEdges returns a block's intra-frame successors. The TCall edge
// carries the callee's return slot: on that edge the runtime writes
// RetSlot before the continuation runs.
type edge struct {
	to      compile.BlockID
	defines int // slot defined by traversing the edge (-1 = none)
}

func succEdges(b *compile.Block) []edge {
	switch b.Term.Kind {
	case compile.TGoto:
		return []edge{{to: b.Term.Target, defines: -1}}
	case compile.TIf:
		return []edge{{to: b.Term.Then, defines: -1}, {to: b.Term.Else, defines: -1}}
	case compile.TCall:
		return []edge{{to: b.Term.Cont, defines: b.Term.RetSlot}}
	}
	return nil
}

// opEffect independently restates the instruction set's register
// model: which slots in reads (uses) and which it writes (defs). It
// deliberately does NOT share compile's stepLiveness — disagreement
// between the two models is exactly what the liveness check detects.
func opEffect(in *compile.Instr) (defs, uses []int) {
	switch in.Op {
	case compile.OpConst, compile.OpNewObj:
		return []int{in.A}, nil
	case compile.OpMove, compile.OpUn, compile.OpConv, compile.OpGetField,
		compile.OpLen, compile.OpSha1, compile.OpStr, compile.OpTblRows, compile.OpNewArr:
		return []int{in.A}, []int{in.B}
	case compile.OpBin, compile.OpGetIdx:
		return []int{in.A}, []int{in.B, in.C}
	case compile.OpSetField:
		return nil, []int{in.A, in.B}
	case compile.OpSetIdx:
		return nil, []int{in.A, in.B, in.C}
	case compile.OpDBQuery, compile.OpDBExec:
		return []int{in.A}, in.Args
	case compile.OpTblGet:
		uses = append(uses, in.B, in.C)
		uses = append(uses, in.Args...)
		return []int{in.A}, uses
	case compile.OpPrint:
		return nil, in.Args
	case compile.OpSendPart, compile.OpSendNative:
		return nil, []int{in.A}
	}
	return nil, nil // begin/commit/rollback: no slot traffic
}

// termUses returns the slots a terminator reads in the current frame.
func termUses(t *compile.Term) []int {
	switch t.Kind {
	case compile.TIf:
		return []int{t.Cond}
	case compile.TCall:
		return t.Args
	case compile.TRet:
		if t.Val >= 0 {
			return []int{t.Val}
		}
	}
	return nil
}

// assignMethods walks each method's blocks (successors only, never
// into callees) and records the owner. A block reachable from two
// methods would make its frame size ambiguous — compiled programs
// never share blocks across methods, so sharing is itself a finding.
func (v *checker) assignMethods() {
	v.methodOf = make([]*compile.MethodInfo, len(v.p.Blocks))
	for _, m := range v.p.MethodList {
		var walk func(id compile.BlockID)
		walk = func(id compile.BlockID) {
			if owner := v.methodOf[id]; owner != nil {
				if owner != m {
					v.addf(CheckStructural, m, id, "block is shared with method %s — frame layout is ambiguous", owner.QName)
				}
				return
			}
			v.methodOf[id] = m
			for _, e := range succEdges(v.p.Blocks[id]) {
				walk(e.to)
			}
		}
		walk(m.Entry)
	}
}

// methodBlockIDs returns m's blocks in ascending ID order, for
// deterministic diagnostics.
func (v *checker) methodBlockIDs(m *compile.MethodInfo) []compile.BlockID {
	var ids []compile.BlockID
	for id := range v.p.Blocks {
		if v.methodOf[id] == m {
			ids = append(ids, compile.BlockID(id))
		}
	}
	return ids
}

// slotBounds checks that every slot an instruction or terminator
// names fits the owning method's frame.
func (v *checker) slotBounds() {
	for _, m := range v.p.MethodList {
		if len(m.Params)+1 > m.NSlots {
			v.addf(CheckStructural, m, compile.NoBlock,
				"frame has %d slots but receiver+params need %d", m.NSlots, len(m.Params)+1)
		}
		for _, id := range v.methodBlockIDs(m) {
			b := v.p.Blocks[id]
			for i := range b.Code {
				defs, uses := opEffect(&b.Code[i])
				for _, s := range append(append([]int{}, defs...), uses...) {
					if s < 0 || s >= m.NSlots {
						v.addf(CheckStructural, m, id,
							"instr %d (%s) names slot %d outside frame of %d slots", i, opName(b.Code[i].Op), s, m.NSlots)
					}
				}
			}
			for _, s := range termUses(&b.Term) {
				if s < 0 || s >= m.NSlots {
					v.addf(CheckStructural, m, id,
						"terminator reads slot %d outside frame of %d slots", s, m.NSlots)
				}
			}
			if b.Term.Kind == compile.TCall {
				if r := b.Term.RetSlot; r < 0 || r >= m.NSlots {
					v.addf(CheckStructural, m, id,
						"call stores its return in slot %d outside frame of %d slots", r, m.NSlots)
				}
			}
			if b.Term.Kind == compile.TRet {
				if val := b.Term.Val; val < -1 || val >= m.NSlots {
					v.addf(CheckStructural, m, id,
						"return names slot %d outside frame of %d slots", val, m.NSlots)
				}
			}
		}
	}
}

// placement checks that DB-placed blocks execute only DB-legal
// instructions. Console output is pinned to the application server by
// the partitioner (pdg.Build pins print statements APP), so a print in
// a DB block means the placement was corrupted after solving.
func (v *checker) placement() {
	for _, b := range v.p.Blocks {
		if b.Loc != pdg.DB {
			continue
		}
		for i := range b.Code {
			if b.Code[i].Op == compile.OpPrint {
				v.addf(CheckPlacement, v.methodOf[b.ID], b.ID,
					"instr %d is a print on a DB-placed block — console output is pinned to the application server", i)
			}
		}
	}
}

func opName(op compile.Op) string {
	names := map[compile.Op]string{
		compile.OpConst: "const", compile.OpMove: "move", compile.OpBin: "bin",
		compile.OpUn: "un", compile.OpConv: "conv", compile.OpNewObj: "newobj",
		compile.OpNewArr: "newarr", compile.OpGetField: "getfield",
		compile.OpSetField: "setfield", compile.OpGetIdx: "getidx",
		compile.OpSetIdx: "setidx", compile.OpLen: "len",
		compile.OpDBQuery: "dbquery", compile.OpDBExec: "dbexec",
		compile.OpDBBegin: "dbbegin", compile.OpDBCommit: "dbcommit",
		compile.OpDBRollback: "dbrollback", compile.OpPrint: "print",
		compile.OpSha1: "sha1", compile.OpStr: "str", compile.OpTblRows: "tblrows",
		compile.OpTblGet: "tblget", compile.OpSendPart: "sendpart",
		compile.OpSendNative: "sendnative",
	}
	if n, ok := names[op]; ok {
		return n
	}
	return fmt.Sprintf("op%d", op)
}

func sortedSlots(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
