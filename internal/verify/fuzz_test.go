package verify

import (
	"testing"

	"pyxis/internal/compile"
	"pyxis/internal/pdg"
)

// FuzzVerifyFused is the acceptance side of the verifier's contract:
// for ANY seeded random placement the differential generator produces
// (pdg.RandomAssign, the PR-6 coin-flip mutator), the compiled program
// must verify clean both pre-fusion (enforced inside compile.Compile
// via the registered hook) and post-fusion. A seed that fails here is
// either a compiler bug (Fuse computed an unsound mask) or a verifier
// bug (the independent fixpoint disagrees with a correct mask) — both
// are release blockers, which is why CI runs the 10s smoke.
func FuzzVerifyFused(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Add(int64(-1))
	f.Add(int64(7919 * 104729))

	srcs := []struct{ name, src string }{
		{"calc", calcTestSrc},
		{"loop", loopTestSrc},
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		for _, s := range srcs {
			// compileSrc compiles with the verifier on: a pre-fusion
			// rejection fails the compile itself.
			p := compileSrc(t, s.src, pdg.RandomAssign(seed), false)
			stats := compile.Fuse(p)
			if err := Program(p); err != nil {
				t.Errorf("%s seed=%d: fused program rejected (fuse %s):\n%v", s.name, seed, stats, err)
			}
		}
	})
}
