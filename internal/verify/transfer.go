package verify

import (
	"pyxis/internal/compile"
	"pyxis/internal/pdg"
)

// transfers enumerates every point where the runtime can serialize a
// frame stack and checks that the mask the codec would ship covers the
// recomputed live-in of the resume block. Two frame positions exist
// on the wire (runtime/transfer.go encodeStack):
//
//   - the TOP frame resumes at the transfer target itself: any block
//     reachable over a placement-crossing edge, plus any method entry
//     placed on the DB (the client starts every invocation on the APP
//     side, so a DB entry transfers immediately). Shipped mask =
//     target.LiveAt with no exclusions.
//
//   - every CALLER frame resumes at its callee's continuation with the
//     callee's RetSlot excluded from the mask — the return value
//     overwrites that slot before the continuation runs, so it is the
//     one legal exclusion. Every TCall is a potential caller frame
//     (the callee may transfer at any depth below it), so every
//     (Cont, RetSlot) pair is checked.
//
// In both positions the decoder zero-fills slots outside the mask;
// a mask that misses a recomputed-live slot is wire corruption.
func (v *checker) transfers() {
	// Top-frame resume points.
	resume := map[compile.BlockID]bool{}
	for _, b := range v.p.Blocks {
		if v.methodOf[b.ID] == nil {
			continue
		}
		for _, e := range succEdges(b) {
			if v.p.Blocks[e.to].Loc != b.Loc {
				resume[e.to] = true
			}
		}
		// A call into a method whose entry sits on the other side
		// transfers with the callee frame on top, resuming at the entry.
		if b.Term.Kind == compile.TCall && b.Term.Method != nil {
			if v.p.Blocks[b.Term.Method.Entry].Loc != b.Loc {
				resume[b.Term.Method.Entry] = true
			}
		}
	}
	for _, m := range v.p.MethodList {
		if v.p.Blocks[m.Entry].Loc == pdg.DB {
			resume[m.Entry] = true
		}
	}
	for _, b := range v.p.Blocks {
		if !resume[b.ID] || b.LiveIn == nil {
			continue // nil mask ships everything: always sound
		}
		for _, s := range sortedSlots(v.liveIn[b.ID]) {
			if !b.LiveAt(s) {
				v.addf(CheckTransfer, v.methodOf[b.ID], b.ID,
					"a control transfer resuming here would ship a mask that drops live slot %d", s)
			}
		}
	}

	// Caller-frame resume points: (Cont, RetSlot) of every call.
	for _, b := range v.p.Blocks {
		if b.Term.Kind != compile.TCall || v.methodOf[b.ID] == nil {
			continue
		}
		cont := v.p.Blocks[b.Term.Cont]
		if cont.LiveIn == nil {
			continue
		}
		for _, s := range sortedSlots(v.liveIn[cont.ID]) {
			if s == b.Term.RetSlot {
				continue // overwritten by the return value: the one legal exclusion
			}
			if !cont.LiveAt(s) {
				v.addf(CheckTransfer, v.methodOf[b.ID], cont.ID,
					"a caller frame suspended at the call in b%d resumes here with live slot %d outside the shipped mask (only RetSlot %d may be excluded)",
					b.ID, s, b.Term.RetSlot)
			}
		}
	}
}
