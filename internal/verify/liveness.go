package verify

import (
	"sort"

	"pyxis/internal/compile"
)

// liveness recomputes every block's live-in slot set with an
// independently written backward fixpoint and requires the stored
// Block.LiveIn bitsets to be a SUPERSET of the recomputation. The
// stored masks decide which slots the v1 transfer codec ships; a mask
// that under-approximates drops a slot the resuming side still reads,
// and the decoder zero-fills it — silent wire corruption, not an
// error. Over-approximation merely ships dead bytes, so only the
// subset direction is enforced. A nil stored bitset means "ship
// everything" and is always sound; on a fused program (the only kind
// the transfer codec consults) a nil mask on a live block is itself a
// finding, because Fuse is specified to compute liveness for every
// reachable block.
func (v *checker) liveness() {
	v.liveIn = make([]map[int]bool, len(v.p.Blocks))
	for _, m := range v.p.MethodList {
		v.livenessMethod(m)
	}
	for _, b := range v.p.Blocks {
		m := v.methodOf[b.ID]
		if m == nil {
			continue // dead scaffolding; never resumed, never shipped
		}
		recomputed := v.liveIn[b.ID]
		if b.LiveIn == nil {
			if v.p.Fused {
				v.addf(CheckLiveness, m, b.ID, "fused program block carries no LiveIn mask — transfers resuming here would ship blind")
			}
			continue
		}
		for _, s := range sortedSlots(recomputed) {
			if !b.LiveAt(s) {
				v.addf(CheckLiveness, m, b.ID,
					"LiveIn mask drops slot %d, which is live on entry — a transfer resuming here would zero it", s)
			}
		}
	}
}

// livenessMethod runs the backward fixpoint over m's blocks. The edge
// transfer mirrors the runtime's resume semantics: an if reads its
// condition; a call's continuation sees RetSlot freshly written (so it
// is dead across the call) while the argument slots are read by the
// call itself; a return reads the returned slot.
func (v *checker) livenessMethod(m *compile.MethodInfo) {
	ids := v.methodBlockIDs(m)
	for _, id := range ids {
		v.liveIn[id] = map[int]bool{}
	}
	// Iterate to fixpoint, sweeping in descending ID order (compiled
	// programs emit roughly topologically, so the backward facts mostly
	// converge in one sweep).
	desc := append([]compile.BlockID(nil), ids...)
	sort.Slice(desc, func(i, j int) bool { return desc[i] > desc[j] })
	for changed := true; changed; {
		changed = false
		for _, id := range desc {
			b := v.p.Blocks[id]
			live := map[int]bool{}
			switch b.Term.Kind {
			case compile.TGoto:
				for s := range v.liveIn[b.Term.Target] {
					live[s] = true
				}
			case compile.TIf:
				for s := range v.liveIn[b.Term.Then] {
					live[s] = true
				}
				for s := range v.liveIn[b.Term.Else] {
					live[s] = true
				}
				live[b.Term.Cond] = true
			case compile.TCall:
				for s := range v.liveIn[b.Term.Cont] {
					live[s] = true
				}
				delete(live, b.Term.RetSlot)
				for _, a := range b.Term.Args {
					live[a] = true
				}
			case compile.TRet:
				if b.Term.Val >= 0 {
					live[b.Term.Val] = true
				}
			}
			for i := len(b.Code) - 1; i >= 0; i-- {
				defs, uses := opEffect(&b.Code[i])
				for _, s := range defs {
					delete(live, s)
				}
				for _, s := range uses {
					live[s] = true
				}
			}
			if !setsEqual(live, v.liveIn[id]) {
				v.liveIn[id] = live
				changed = true
			}
		}
	}
}

func setsEqual(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for s := range a {
		if !b[s] {
			return false
		}
	}
	return true
}
