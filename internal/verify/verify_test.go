package verify

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pyxis/internal/analysis"
	"pyxis/internal/compile"
	"pyxis/internal/pdg"
	"pyxis/internal/profile"
	"pyxis/internal/pyxil"
	"pyxis/internal/source"
)

var update = flag.Bool("update", false, "rewrite the golden .diag files under testdata/")

// calcTestSrc mirrors the runtime suite's calculator: branches, array
// state, a print, and three entry points.
const calcTestSrc = `
class Calc {
    int acc;
    int[] history;

    Calc() {
        acc = 0;
        history = new int[8];
    }

    entry int apply(int x, bool double_) {
        if (double_) {
            acc += x * 2;
        } else {
            acc += x;
        }
        history[x % 8] = acc;
        return acc;
    }

    entry int histAt(int i) {
        return history[i % 8];
    }

    entry string describe() {
        string s = "acc=" + sys.str(acc);
        sys.print(s);
        return s;
    }
}
`

// loopTestSrc mirrors the differential suite's looping program: nested
// loops and an intra-class call, so fused programs carry caller frames.
const loopTestSrc = `
class L {
    int total;
    int[] buf;

    L() {
        total = 0;
        buf = new int[16];
    }

    int step(int x) {
        int y = x;
        while (y > 0) {
            total = total + y % 3;
            y = y - 1;
        }
        return total;
    }

    entry int run(int n) {
        int i = 0;
        while (i < n) {
            buf[i % 16] = step(i);
            i = i + 1;
        }
        return total;
    }

    entry int peek(int i) {
        return buf[i % 16];
    }

    entry string show() {
        string s = "t=" + sys.str(total);
        sys.print(s);
        return s;
    }
}
`

// kvTestSrc exercises the SQL path: two distinct statements populate
// Program.SQLTable, which the structural SQLID checks are about.
const kvTestSrc = `
class Kv {
    int cached;

    Kv() {
        cached = 0;
    }

    entry int get(int k) {
        table t = db.query("SELECT v FROM kv WHERE k = ?", k);
        if (t.rows() > 0) {
            cached = t.getInt(0, 0);
        }
        return cached;
    }

    entry int put(int k, int v) {
        db.update("UPDATE kv SET v = ? WHERE k = ?", v, k);
        return v;
    }
}
`

// compileSrc compiles src under the given placement mutator with the
// registered verifier ON, so every fixture starts from a program the
// verifier accepted; mutation tests then break it by hand.
func compileSrc(t *testing.T, src string, assign func(*pdg.Graph, pdg.Placement), fuse bool) *compile.Program {
	t.Helper()
	prog, err := source.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(prog)
	g := pdg.Build(res, profile.New(), pdg.Options{})
	place := pdg.Placement{}
	for id := range g.Nodes {
		place[id] = pdg.App
	}
	place[g.DBCodeID] = pdg.DB
	if assign != nil {
		assign(g, place)
	}
	px := pyxil.Generate(res, g, place, pyxil.Options{})
	compiled, err := compile.Compile(px)
	if err != nil {
		t.Fatalf("compile rejected a generator placement: %v", err)
	}
	if fuse {
		compile.Fuse(compiled)
	}
	return compiled
}

// allDB forces every statement and method entry onto the database
// server, making method entries transfer resume points.
func allDB(g *pdg.Graph, place pdg.Placement) {
	for id, n := range g.Nodes {
		if n.Pin != pdg.Unpinned {
			place[id] = n.Pin
			continue
		}
		place[id] = pdg.DB
	}
}

func TestVerifyCleanPrograms(t *testing.T) {
	srcs := map[string]string{"calc": calcTestSrc, "loop": loopTestSrc, "kv": kvTestSrc}
	for name, src := range srcs {
		for _, fuse := range []bool{false, true} {
			p := compileSrc(t, src, nil, fuse)
			if err := Program(p); err != nil {
				t.Errorf("%s (fuse=%v, all-APP): %v", name, fuse, err)
			}
		}
	}
	for name, src := range map[string]string{"calc": calcTestSrc, "loop": loopTestSrc} {
		for seed := int64(1); seed <= 8; seed++ {
			for _, fuse := range []bool{false, true} {
				p := compileSrc(t, src, pdg.RandomAssign(seed), fuse)
				if err := Program(p); err != nil {
					t.Errorf("%s seed=%d fuse=%v: %v", name, seed, fuse, err)
				}
			}
		}
	}
}

// clearLowestLiveBit clears the lowest set bit of b.LiveIn, returning
// the slot it dropped.
func clearLowestLiveBit(t *testing.T, b *compile.Block) int {
	t.Helper()
	for w := range b.LiveIn {
		if b.LiveIn[w] == 0 {
			continue
		}
		for bit := 0; bit < 64; bit++ {
			if b.LiveIn[w]&(1<<uint(bit)) != 0 {
				b.LiveIn[w] &^= 1 << uint(bit)
				return w*64 + bit
			}
		}
	}
	t.Fatalf("b%d has an empty LiveIn mask; nothing to drop", b.ID)
	return -1
}

// TestVerifyRejectsMutilatedPrograms is the regression corpus: one
// hand-broken program per check class, each asserting the exact
// diagnostic text against a golden file under testdata/.
func TestVerifyRejectsMutilatedPrograms(t *testing.T) {
	cases := []struct {
		name      string // also the testdata/<name>.diag golden
		src       string
		assign    func(*pdg.Graph, pdg.Placement)
		fuse      bool
		wantCheck string
		mutate    func(t *testing.T, p *compile.Program)
	}{
		{
			// structural: a goto into the void. The runtime fetches
			// blocks by index, so this would panic mid-request.
			name: "structural-dangling-goto", src: calcTestSrc, wantCheck: CheckStructural,
			mutate: func(t *testing.T, p *compile.Program) {
				for _, b := range p.Blocks {
					if b.Term.Kind == compile.TGoto {
						b.Term.Target = 9999
						return
					}
				}
				t.Fatal("no TGoto block to mutilate")
			},
		},
		{
			// structural: MethodInfo.Idx out of step with MethodList.
			// Transfer frames name methods by index, so a peer decoding
			// this program would resume the wrong method.
			name: "structural-method-idx", src: calcTestSrc, wantCheck: CheckStructural,
			mutate: func(t *testing.T, p *compile.Program) {
				p.MethodList[1].Idx = 5
			},
		},
		{
			// structural: an SQLID pointing at the wrong SQLTable entry.
			// The prepared wire ships only the ID, so the remote side
			// would execute a different statement than the one compiled.
			name: "structural-sql-mismatch", src: kvTestSrc, wantCheck: CheckStructural,
			mutate: func(t *testing.T, p *compile.Program) {
				if len(p.SQLTable) < 2 {
					t.Fatalf("kv program has %d SQL statements; need 2", len(p.SQLTable))
				}
				for _, b := range p.Blocks {
					for i := range b.Code {
						in := &b.Code[i]
						if in.Op == compile.OpDBQuery || in.Op == compile.OpDBExec {
							in.SQLID = (in.SQLID + 1) % int32(len(p.SQLTable))
							return
						}
					}
				}
				t.Fatal("no SQL instruction to mutilate")
			},
		},
		{
			// defuse: a read of a frame slot no path has written. The
			// transfer decoder zero-fills dead slots, so this is exactly
			// the program shape that turns a dropped mask bit into
			// wrong answers.
			name: "defuse-read-before-write", src: calcTestSrc, wantCheck: CheckDefUse,
			mutate: func(t *testing.T, p *compile.Program) {
				m := p.Method("Calc.apply")
				if m.NSlots <= len(m.Params)+1 {
					t.Fatalf("Calc.apply frame too small (%d slots) to have an undefined temp", m.NSlots)
				}
				entry := p.Blocks[m.Entry]
				read := compile.Instr{Op: compile.OpMove, A: 0, B: m.NSlots - 1}
				entry.Code = append([]compile.Instr{read}, entry.Code...)
			},
		},
		{
			// liveness: a live slot scrubbed from a fused block's mask.
			// This is the silent-corruption bug class the verifier
			// exists for — Fuse computing a too-small bitset.
			name: "liveness-dropped-slot", src: loopTestSrc, fuse: true, wantCheck: CheckLiveness,
			mutate: func(t *testing.T, p *compile.Program) {
				m := p.Method("L.step")
				b := p.Blocks[m.Entry]
				if s := clearLowestLiveBit(t, b); s < 0 {
					t.Fatal("no live bit cleared")
				}
			},
		},
		{
			// transfer: the same dropped-bit corruption on a block that
			// is a transfer resume point (a DB-placed method entry), so
			// the wire itself would ship the lying mask. The liveness
			// check co-fires — masks are checked everywhere — but the
			// transfer check names the resume semantics.
			name: "transfer-dropped-mask-bit", src: calcTestSrc, assign: allDB, fuse: true, wantCheck: CheckTransfer,
			mutate: func(t *testing.T, p *compile.Program) {
				m := p.Method("Calc.apply")
				if p.Blocks[m.Entry].Loc != pdg.DB {
					t.Fatalf("Calc.apply entry not on DB under allDB placement")
				}
				clearLowestLiveBit(t, p.Blocks[m.Entry])
			},
		},
		{
			// placement: console output moved onto the database server.
			// pdg.Build pins prints APP; a DB-placed print means the
			// placement was corrupted after solving.
			name: "placement-print-on-db", src: calcTestSrc, wantCheck: CheckPlacement,
			mutate: func(t *testing.T, p *compile.Program) {
				for _, b := range p.Blocks {
					for i := range b.Code {
						if b.Code[i].Op == compile.OpPrint {
							b.Loc = pdg.DB
							return
						}
					}
				}
				t.Fatal("no print instruction to mutilate")
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := compileSrc(t, tc.src, tc.assign, tc.fuse)
			tc.mutate(t, p)

			ds := Diagnostics(p)
			if len(ds) == 0 {
				t.Fatal("verifier accepted the mutilated program")
			}
			found := false
			var lines []string
			for _, d := range ds {
				if d.Check == tc.wantCheck {
					found = true
				}
				lines = append(lines, d.String())
			}
			if !found {
				t.Errorf("no %s diagnostic; got:\n  %s", tc.wantCheck, strings.Join(lines, "\n  "))
			}
			got := strings.Join(lines, "\n") + "\n"

			golden := filepath.Join("testdata", tc.name+".diag")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics changed:\n-- got --\n%s-- want --\n%s", got, want)
			}

			// The program must also fail the error-returning entry point
			// (what compile.Compile calls), not just Diagnostics.
			if err := Program(p); err == nil {
				t.Error("Program() returned nil for a mutilated program")
			}
		})
	}
}

// TestCompileVerifiesByDefault checks the registration hook: in any
// binary that links this package, compile.Compile runs the verifier
// and surfaces its findings as a compile error.
func TestCompileVerifiesByDefault(t *testing.T) {
	prog, err := source.Load(calcTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	res := analysis.Run(prog)
	g := pdg.Build(res, profile.New(), pdg.Options{})
	place := pdg.Placement{}
	for id := range g.Nodes {
		place[id] = pdg.App
	}
	place[g.DBCodeID] = pdg.DB
	px := pyxil.Generate(res, g, place, pyxil.Options{})
	if _, err := compile.Compile(px); err != nil {
		t.Fatalf("clean program rejected: %v", err)
	}
	if _, err := compile.Compile(px, compile.NoVerify()); err != nil {
		t.Fatalf("NoVerify compile failed: %v", err)
	}
}

// TestDiagString pins the rendering the CLI and CI logs show.
func TestDiagString(t *testing.T) {
	d := Diag{Check: CheckLiveness, Method: "L.step", Block: 7, Msg: "dropped slot 3"}
	if got, want := d.String(), "liveness: L.step: b7: dropped slot 3"; got != want {
		t.Errorf("Diag.String() = %q, want %q", got, want)
	}
	d = Diag{Check: CheckStructural, Block: compile.NoBlock, Msg: "tables disagree"}
	if got, want := d.String(), "structural: tables disagree"; got != want {
		t.Errorf("Diag.String() = %q, want %q", got, want)
	}
}

func ExampleProgram() {
	prog, _ := source.Load(kvTestSrc)
	res := analysis.Run(prog)
	g := pdg.Build(res, profile.New(), pdg.Options{})
	place := pdg.Placement{}
	for id := range g.Nodes {
		place[id] = pdg.App
	}
	place[g.DBCodeID] = pdg.DB
	px := pyxil.Generate(res, g, place, pyxil.Options{})
	p, _ := compile.Compile(px)
	fmt.Println(Program(p))
	// Output: <nil>
}
