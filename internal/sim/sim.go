// Package sim is a deterministic process-based discrete-event
// simulator: goroutines act as simulated processes but exactly one
// runs at a time, handing a baton back to the scheduler whenever they
// touch virtual time. It models the paper's two-server testbed — c-core
// CPU pools with FIFO queues, a fixed-RTT bandwidth-limited link — so
// the evaluation's latency/throughput/CPU/network curves can be
// regenerated deterministically on one machine.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Proc is a simulated process. Its methods must only be called from
// within the process's own goroutine (started via Engine.Spawn).
type Proc struct {
	eng    *Engine
	resume chan struct{}
	parked bool
}

type event struct {
	t   float64
	seq int64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Engine owns virtual time and the runnable-event queue.
type Engine struct {
	now    float64
	events eventHeap
	seq    int64
	yield  chan struct{}
	// Live counts spawned-but-unfinished processes, for leak detection.
	Live int
}

// New creates an engine at time zero.
func New() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

func (e *Engine) schedule(p *Proc, t float64) {
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, p: p})
}

// Spawn starts fn as a simulated process at time `at` (use e.Now() for
// immediately). It may be called before Run or from inside a process.
func (e *Engine) Spawn(at float64, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, resume: make(chan struct{})}
	e.Live++
	go func() {
		<-p.resume // wait for first scheduling
		fn(p)
		e.Live--
		e.yield <- struct{}{} // process finished; return the baton
	}()
	e.schedule(p, at)
	return p
}

// Run advances virtual time until the event queue empties or `until`
// is reached, and returns the final time.
func (e *Engine) Run(until float64) float64 {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.t > until {
			heap.Push(&e.events, ev)
			e.now = until
			return e.now
		}
		if ev.t > e.now {
			e.now = ev.t
		}
		ev.p.parked = false
		ev.p.resume <- struct{}{} // wake the process
		<-e.yield                 // wait for it to park/sleep/finish
	}
	return e.now
}

// park returns the baton to the engine and blocks until rescheduled.
func (p *Proc) park() {
	p.parked = true
	p.eng.yield <- struct{}{}
	<-p.resume
}

// Sleep advances this process by d seconds of virtual time.
func (p *Proc) Sleep(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("sim: bad sleep duration %g", d))
	}
	p.eng.schedule(p, p.eng.now+d)
	p.park()
}

// Now returns current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Park blocks until another process calls Wake. (Used for lock waits.)
func (p *Proc) Park() { p.park() }

// Wake schedules a parked process to resume at the current time. Must
// be called by the process currently holding the baton.
func (p *Proc) Wake(target *Proc) {
	p.eng.schedule(target, p.eng.now)
}

// WaitPoint adapts Park/Wake to the sqldb lock manager's wait-point
// contract: wait parks this process; wake (called by the lock releaser,
// itself a simulated process) reschedules it.
func (p *Proc) WaitPoint() (wait func(), wake func()) {
	return func() { p.park() }, func() { p.eng.schedule(p, p.eng.now) }
}

// ---------------------------------------------------------------------------
// Resources (CPU pools, serial locks)
// ---------------------------------------------------------------------------

// Resource is a c-server FIFO queue (a CPU pool when c = cores, a
// mutex when c = 1). Busy time is tracked for utilization reporting.
type Resource struct {
	eng     *Engine
	Name    string
	Cap     int
	inUse   int
	waiters []*Proc

	BusyTime  float64 // accumulated holder-seconds
	resetAt   float64
	busyReset float64
}

// NewResource creates a resource with cap servers.
func (e *Engine) NewResource(name string, cap int) *Resource {
	return &Resource{eng: e, Name: name, Cap: cap}
}

// Acquire takes one server, queueing FIFO if all are busy.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.Cap {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
	// Woken by Release with the server already transferred.
}

// Release frees one server, handing it to the first waiter if any.
func (r *Resource) Release(p *Proc) {
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		p.eng.schedule(next, p.eng.now) // server passes directly to next
		return
	}
	r.inUse--
}

// Use occupies one server for d seconds of virtual time.
func (r *Resource) Use(p *Proc, d float64) {
	r.Acquire(p)
	p.Sleep(d)
	r.BusyTime += d
	r.Release(p)
}

// Utilization returns busy fraction (0..1) since the last ResetStats,
// given the current time.
func (r *Resource) Utilization() float64 {
	window := r.eng.now - r.resetAt
	if window <= 0 {
		return 0
	}
	return (r.BusyTime - r.busyReset) / (window * float64(r.Cap))
}

// QueueLen returns the number of queued waiters.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// ResetStats starts a fresh utilization window at the current time.
func (r *Resource) ResetStats() {
	r.resetAt = r.eng.now
	r.busyReset = r.BusyTime
}

// ---------------------------------------------------------------------------
// Network link
// ---------------------------------------------------------------------------

// Link models a symmetric network path with fixed one-way latency and
// finite bandwidth. Transfer blocks the calling process for the
// one-way delivery time of a message; a full request/response exchange
// is two Transfers.
type Link struct {
	eng *Engine
	// LatencyOneWay in seconds (RTT/2).
	LatencyOneWay float64
	// BandwidthBps in bytes/second.
	BandwidthBps float64

	Bytes    int64
	Messages int64
	resetAt  float64
	bytesRst int64
}

// NewLink creates a link with the given RTT and bandwidth.
func (e *Engine) NewLink(rtt float64, bwBps float64) *Link {
	return &Link{eng: e, LatencyOneWay: rtt / 2, BandwidthBps: bwBps}
}

// Transfer delivers one message of the given size, blocking the caller
// for propagation + serialization delay.
func (l *Link) Transfer(p *Proc, bytes int) {
	l.Bytes += int64(bytes)
	l.Messages++
	d := l.LatencyOneWay
	if l.BandwidthBps > 0 {
		d += float64(bytes) / l.BandwidthBps
	}
	p.Sleep(d)
}

// Throughput returns bytes/second since the last ResetStats.
func (l *Link) Throughput() float64 {
	window := l.eng.now - l.resetAt
	if window <= 0 {
		return 0
	}
	return float64(l.Bytes-l.bytesRst) / window
}

// ResetStats starts a fresh throughput window.
func (l *Link) ResetStats() {
	l.resetAt = l.eng.now
	l.bytesRst = l.Bytes
}

// ---------------------------------------------------------------------------
// Measurement helpers
// ---------------------------------------------------------------------------

// Hist collects samples for latency statistics.
type Hist struct {
	xs     []float64
	sorted bool
}

// Add records one sample.
func (h *Hist) Add(v float64) {
	h.xs = append(h.xs, v)
	h.sorted = false
}

// N returns the sample count.
func (h *Hist) N() int { return len(h.xs) }

// Mean returns the sample mean (0 if empty).
func (h *Hist) Mean() float64 {
	if len(h.xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range h.xs {
		s += x
	}
	return s / float64(len(h.xs))
}

// P returns the q-quantile (0..1) by nearest rank.
func (h *Hist) P(q float64) float64 {
	if len(h.xs) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.xs)
		h.sorted = true
	}
	i := int(q * float64(len(h.xs)-1))
	return h.xs[i]
}

// Reset clears the samples.
func (h *Hist) Reset() { h.xs = h.xs[:0]; h.sorted = false }
