package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSleepAdvancesClock(t *testing.T) {
	e := New()
	var end float64
	e.Spawn(0, func(p *Proc) {
		p.Sleep(1.5)
		p.Sleep(2.5)
		end = p.Now()
	})
	e.Run(100)
	if end != 4.0 {
		t.Fatalf("end = %v, want 4.0", end)
	}
	if e.Live != 0 {
		t.Fatalf("leaked %d processes", e.Live)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []int {
		e := New()
		var order []int
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn(float64(i)*0.1, func(p *Proc) {
				p.Sleep(float64(5-i) * 1.0)
				order = append(order, i)
			})
		}
		e.Run(100)
		return order
	}
	a, b := run(), run()
	want := []int{4, 3, 2, 1, 0} // i=4 sleeps 1s from t=0.4 → finishes first
	for i := range want {
		if a[i] != want[i] || b[i] != want[i] {
			t.Fatalf("order = %v / %v, want %v", a, b, want)
		}
	}
}

// Single-server deterministic queue: utilization must equal λ·s and
// waiting must appear once λ·s approaches 1.
func TestResourceUtilizationClosedForm(t *testing.T) {
	e := New()
	cpu := e.NewResource("cpu", 1)
	const service = 0.01
	const interval = 0.025 // λ = 40/s ⇒ ρ = 0.4
	for i := 0; i < 400; i++ {
		at := float64(i) * interval
		e.Spawn(at, func(p *Proc) { cpu.Use(p, service) })
	}
	end := e.Run(1e9)
	util := cpu.BusyTime / end
	if !almost(util, 0.4, 0.02) {
		t.Fatalf("utilization = %v, want ≈0.4 (busy=%v end=%v)", util, cpu.BusyTime, end)
	}
}

// Overloaded c-server queue: completion rate caps at c/service.
func TestResourceSaturation(t *testing.T) {
	e := New()
	cpu := e.NewResource("cpu", 3)
	const service = 0.01
	done := 0
	// Offered load 10× capacity.
	for i := 0; i < 3000; i++ {
		at := float64(i) * 0.0001
		e.Spawn(at, func(p *Proc) {
			cpu.Use(p, service)
			done++
		})
	}
	e.Run(1e9)
	// 3000 jobs × 0.01s / 3 servers = 10s minimum.
	if end := e.Now(); !almost(end, 10.0, 0.35) {
		t.Fatalf("end = %v, want ≈10s", end)
	}
	if done != 3000 {
		t.Fatalf("done = %d", done)
	}
}

func TestLinkLatencyAndBandwidth(t *testing.T) {
	e := New()
	l := e.NewLink(0.002, 1000) // RTT 2ms, 1000 B/s
	var took float64
	e.Spawn(0, func(p *Proc) {
		start := p.Now()
		l.Transfer(p, 500) // 1ms propagation + 0.5s serialization
		took = p.Now() - start
	})
	e.Run(10)
	if !almost(took, 0.501, 1e-9) {
		t.Fatalf("transfer took %v, want 0.501", took)
	}
	if l.Bytes != 500 || l.Messages != 1 {
		t.Fatalf("counters: %d bytes %d msgs", l.Bytes, l.Messages)
	}
}

func TestParkWake(t *testing.T) {
	e := New()
	var waiter *Proc
	got := -1.0
	e.Spawn(0, func(p *Proc) {
		waiter = p
		p.Park()
		got = p.Now()
	})
	e.Spawn(1, func(p *Proc) {
		p.Sleep(2) // wake at t=3
		p.Wake(waiter)
	})
	e.Run(100)
	if got != 3.0 {
		t.Fatalf("woken at %v, want 3.0", got)
	}
}

func TestWaitPointWithResourceContention(t *testing.T) {
	// Two processes serialize on a capacity-1 resource via WaitPoint
	// semantics as sqldb would use them.
	e := New()
	res := e.NewResource("lock", 1)
	var order []string
	worker := func(name string, at, hold float64) {
		e.Spawn(at, func(p *Proc) {
			res.Acquire(p)
			order = append(order, name+"-in")
			p.Sleep(hold)
			order = append(order, name+"-out")
			res.Release(p)
		})
	}
	worker("a", 0, 5)
	worker("b", 1, 1)
	e.Run(100)
	want := []string{"a-in", "a-out", "b-in", "b-out"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Property: with one server and deterministic arrivals, the mean
// latency is never below the service time and total busy time equals
// jobs × service.
func TestQueueingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		cpu := e.NewResource("cpu", 1+rng.Intn(4))
		service := 0.001 + rng.Float64()*0.01
		n := 50 + rng.Intn(100)
		var h Hist
		for i := 0; i < n; i++ {
			at := rng.Float64() * 0.5
			e.Spawn(at, func(p *Proc) {
				t0 := p.Now()
				cpu.Use(p, service)
				h.Add(p.Now() - t0)
			})
		}
		e.Run(1e9)
		if h.N() != n {
			return false
		}
		if h.Mean() < service-1e-12 {
			return false
		}
		return almost(cpu.BusyTime, float64(n)*service, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHist(t *testing.T) {
	var h Hist
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean = %v", h.Mean())
	}
	if p := h.P(0.95); p < 94 || p > 97 {
		t.Errorf("p95 = %v", p)
	}
	h.Reset()
	if h.N() != 0 {
		t.Error("reset failed")
	}
}
