package interp

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"pyxis/internal/dbapi"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

func run(t *testing.T, src, class, method string, args ...val.Value) (val.Value, *Interp) {
	t.Helper()
	prog, err := source.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	ip := New(prog, dbapi.NewLocal(sqldb.Open()))
	obj, err := ip.NewObject(class)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ip.CallEntry(prog.Method(class, method), obj, args...)
	if err != nil {
		t.Fatal(err)
	}
	return v, ip
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
class C {
    C() { }
    entry int gauss(int n) {
        int s = 0;
        for (int i = 1; i <= n; i++) {
            s += i;
        }
        return s;
    }
    entry double mix(int a, double b) {
        double x = a * b;
        if (x > 10.0) {
            x = x / 2.0;
        } else {
            x = -x;
        }
        return x;
    }
    entry int mods(int a, int b) {
        return a % b;
    }
    entry bool logic(bool p, bool q) {
        return p && !q || (p == q);
    }
    entry int breakLoop(int n) {
        int i = 0;
        while (true) {
            if (i >= n) {
                break;
            }
            i++;
        }
        return i;
    }
}`
	if v, _ := run(t, src, "C", "gauss", val.IntV(100)); v.I != 5050 {
		t.Errorf("gauss = %v", v)
	}
	if v, _ := run(t, src, "C", "mix", val.IntV(4), val.DoubleV(3)); v.F != 6 {
		t.Errorf("mix = %v", v)
	}
	if v, _ := run(t, src, "C", "mix", val.IntV(1), val.DoubleV(3)); v.F != -3 {
		t.Errorf("mix2 = %v", v)
	}
	if v, _ := run(t, src, "C", "mods", val.IntV(17), val.IntV(5)); v.I != 2 {
		t.Errorf("mods = %v", v)
	}
	if v, _ := run(t, src, "C", "logic", val.BoolV(true), val.BoolV(false)); !v.AsBool() {
		t.Errorf("logic = %v", v)
	}
	if v, _ := run(t, src, "C", "breakLoop", val.IntV(7)); v.I != 7 {
		t.Errorf("breakLoop = %v", v)
	}
}

func TestObjectsAndArrays(t *testing.T) {
	src := `
class Pair {
    int a;
    int b;
    Pair(int a, int b) {
        this.a = a;
        this.b = b;
    }
    int sum() {
        return a + b;
    }
}
class C {
    C() { }
    entry int pairs(int n) {
        Pair[] ps = new Pair[n];
        for (int i = 0; i < n; i++) {
            ps[i] = new Pair(i, i * 2);
        }
        int total = 0;
        for (Pair p : ps) {
            total += p.sum();
        }
        return total;
    }
    entry string cat(int n) {
        string s = "";
        for (int i = 0; i < n; i++) {
            s += sys.str(i);
        }
        return s;
    }
}`
	// sum_{i<5} 3i = 3*10 = 30
	if v, _ := run(t, src, "C", "pairs", val.IntV(5)); v.I != 30 {
		t.Errorf("pairs = %v", v)
	}
	if v, _ := run(t, src, "C", "cat", val.IntV(4)); v.S != "0123" {
		t.Errorf("cat = %v", v)
	}
}

func TestShortCircuitSideEffects(t *testing.T) {
	src := `
class C {
    int hits;
    C() { hits = 0; }
    bool touch(bool r) {
        hits++;
        return r;
    }
    entry int andCount(bool p) {
        bool x = touch(p) && touch(true);
        return hits;
    }
}`
	if v, _ := run(t, src, "C", "andCount", val.BoolV(false)); v.I != 1 {
		t.Errorf("false && _ should evaluate once, hits=%v", v)
	}
	if v, _ := run(t, src, "C", "andCount", val.BoolV(true)); v.I != 2 {
		t.Errorf("true && _ should evaluate twice, hits=%v", v)
	}
}

func TestNullSemantics(t *testing.T) {
	src := `
class Node { int v; Node() { } }
class C {
    Node n;
    C() { }
    entry bool isNull() {
        return n == null;
    }
    entry int deref() {
        return n.v;
    }
}`
	if v, _ := run(t, src, "C", "isNull"); !v.AsBool() {
		t.Errorf("fresh field should be null")
	}
	prog := source.MustLoad(src)
	ip := New(prog, dbapi.NewLocal(sqldb.Open()))
	obj, _ := ip.NewObject("C")
	if _, err := ip.CallEntry(prog.Method("C", "deref"), obj); err == nil {
		t.Error("null deref should error")
	}
}

func TestPrintOutput(t *testing.T) {
	prog := source.MustLoad(`
class C {
    C() { }
    entry void hello(int n) {
        sys.print("n =", n, n * 1.5);
    }
}`)
	ip := New(prog, dbapi.NewLocal(sqldb.Open()))
	var buf bytes.Buffer
	ip.Out = &buf
	obj, _ := ip.NewObject("C")
	if _, err := ip.CallEntry(prog.Method("C", "hello"), obj, val.IntV(4)); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "n = 4 6.0" {
		t.Errorf("print output = %q", got)
	}
}

func TestDBRoundTripThroughInterp(t *testing.T) {
	db := sqldb.Open()
	s := db.NewSession()
	for _, q := range []string{
		"CREATE TABLE kv (k INT PRIMARY KEY, v VARCHAR(10))",
		"INSERT INTO kv VALUES (1, 'one')",
		"INSERT INTO kv VALUES (2, 'two')",
	} {
		if _, err := s.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	prog := source.MustLoad(`
class C {
    C() { }
    entry string lookup(int k) {
        table t = db.query("SELECT v FROM kv WHERE k = ?", k);
        if (t.rows() == 0) {
            return "missing";
        }
        return t.getString(0, 0);
    }
    entry int add(int k, string v) {
        return db.update("INSERT INTO kv VALUES (?, ?)", k, v);
    }
}`)
	ip := New(prog, dbapi.NewLocal(db))
	obj, _ := ip.NewObject("C")
	v, err := ip.CallEntry(prog.Method("C", "lookup"), obj, val.IntV(2))
	if err != nil || v.S != "two" {
		t.Fatalf("lookup = %v, %v", v, err)
	}
	if v, err := ip.CallEntry(prog.Method("C", "lookup"), obj, val.IntV(9)); err != nil || v.S != "missing" {
		t.Fatalf("lookup(9) = %v, %v", v, err)
	}
	if n, err := ip.CallEntry(prog.Method("C", "add"), obj, val.IntV(3), val.StrV("three")); err != nil || n.I != 1 {
		t.Fatalf("add = %v, %v", n, err)
	}
}

// Property: gauss via the interpreter equals the closed form for any n.
func TestGaussProperty(t *testing.T) {
	prog := source.MustLoad(`
class C {
    C() { }
    entry int gauss(int n) {
        int s = 0;
        for (int i = 1; i <= n; i++) {
            s += i;
        }
        return s;
    }
}`)
	ip := New(prog, dbapi.NewLocal(sqldb.Open()))
	obj, _ := ip.NewObject("C")
	m := prog.Method("C", "gauss")
	f := func(raw uint8) bool {
		n := int64(raw % 200)
		v, err := ip.CallEntry(m, obj, val.IntV(n))
		return err == nil && v.I == n*(n+1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSha1Deterministic(t *testing.T) {
	a, b := Sha1Round(42), Sha1Round(42)
	if a != b {
		t.Error("sha1 must be deterministic")
	}
	if Sha1Round(1) == Sha1Round(2) {
		t.Error("different inputs should (almost surely) differ")
	}
}
