// Package interp is the reference tree-walking interpreter for PyxJ.
// It defines the language's semantics: the partitioned runtime must be
// observationally equivalent to it (the equivalence is property-tested
// in the runtime package). The profiler drives workloads through it to
// collect the execution counts and assigned-data sizes that weight the
// partition graph (paper §4.1).
package interp

import (
	"crypto/sha1"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"pyxis/internal/dbapi"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// Value is an interpreter value: a scalar (in the embedded val.Value)
// or a reference to interpreter-local heap storage.
type Value struct {
	val.Value
	Obj *Object
	Arr *Array
	Tab *sqldb.ResultSet
}

// Object is a class instance.
type Object struct {
	Class  *source.Class
	Fields []Value
}

// Array is a PyxJ array.
type Array struct {
	Elem  source.Type
	Elems []Value
}

// Scalar wraps a raw val.Value as an interpreter value.
func Scalar(v val.Value) Value { return Value{Value: v} }

func objV(o *Object) Value { return Value{Value: val.Value{K: val.Obj}, Obj: o} }
func arrV(a *Array) Value  { return Value{Value: val.Value{K: val.Arr}, Arr: a} }
func tabV(t *sqldb.ResultSet) Value {
	return Value{Value: val.Value{K: val.Table}, Tab: t}
}

// Size estimates the serialized size of v in bytes, matching the
// accounting the runtime uses when it ships values between servers.
func Size(v Value) int {
	switch v.K {
	case val.Obj:
		if v.Obj == nil {
			return 9
		}
		n := 16
		for _, f := range v.Obj.Fields {
			n += f.Value.Size()
		}
		return n
	case val.Arr:
		if v.Arr == nil {
			return 9
		}
		n := 24
		for _, e := range v.Arr.Elems {
			n += e.Value.Size()
		}
		return n
	case val.Table:
		if v.Tab == nil {
			return 9
		}
		return v.Tab.Size()
	default:
		return v.Value.Size()
	}
}

// Hooks observe execution for profiling. Any hook may be nil.
type Hooks struct {
	// OnStmt fires once per executed statement.
	OnStmt func(id source.NodeID)
	// OnAssign fires for every value-producing statement (declarations
	// with initializers, assignments) with the assigned value's size.
	OnAssign func(id source.NodeID, size int)
	// OnFieldWrite fires when a field is stored, keyed by field node.
	OnFieldWrite func(fieldID source.NodeID, size int)
	// OnDBCall fires for each database operation.
	OnDBCall func(id source.NodeID)
	// OnEntryCall fires when a method is invoked from outside the
	// partitioned program (entry wrapper or external object creation).
	OnEntryCall func(m *source.Method)
}

// Interp executes PyxJ programs against a database connection.
type Interp struct {
	Prog  *source.Program
	DB    dbapi.Conn
	Out   io.Writer
	Hooks Hooks

	// Sha1Count counts sys.sha1 invocations (CPU-work accounting).
	Sha1Count int64

	curStmt source.NodeID // statement being executed (for OnDBCall)
}

// New creates an interpreter over prog with database connection db.
// Console output is discarded unless Out is set.
func New(prog *source.Program, db dbapi.Conn) *Interp {
	return &Interp{Prog: prog, DB: db, Out: io.Discard}
}

// errSignal carries non-error control flow through Go's error channel.
type ctrl uint8

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlReturn
)

type frame struct {
	this  *Object
	slots []Value
}

// RuntimeError is a PyxJ-level execution failure (null dereference,
// index out of range, division by zero, database error, ...).
type RuntimeError struct {
	Pos source.Pos
	Msg string
}

func (e *RuntimeError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func rerr(pos source.Pos, format string, args ...any) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// NewObject allocates an instance of class and runs its constructor.
func (ip *Interp) NewObject(class string, args ...Value) (*Object, error) {
	cl := ip.Prog.Class(class)
	if cl == nil {
		return nil, fmt.Errorf("interp: unknown class %s", class)
	}
	obj := &Object{Class: cl, Fields: make([]Value, len(cl.Fields))}
	for i, f := range cl.Fields {
		obj.Fields[i] = Scalar(f.Type.Zero())
	}
	if ctor := cl.MethodByName(cl.Name); ctor != nil {
		if ip.Hooks.OnEntryCall != nil {
			ip.Hooks.OnEntryCall(ctor)
		}
		if _, err := ip.call(ctor, obj, args); err != nil {
			return nil, err
		}
	} else if len(args) != 0 {
		return nil, fmt.Errorf("interp: class %s has no constructor", class)
	}
	return obj, nil
}

// CallEntry invokes an entry method on obj with scalar arguments and
// returns its scalar result.
func (ip *Interp) CallEntry(method *source.Method, obj *Object, args ...val.Value) (val.Value, error) {
	if ip.Hooks.OnEntryCall != nil {
		ip.Hooks.OnEntryCall(method)
	}
	vals := make([]Value, len(args))
	for i, a := range args {
		vals[i] = Scalar(a)
	}
	out, err := ip.call(method, obj, vals)
	if err != nil {
		return val.Value{}, err
	}
	return out.Value, nil
}

// Call invokes any method (test helper; entry points use CallEntry).
func (ip *Interp) Call(method *source.Method, obj *Object, args []Value) (Value, error) {
	return ip.call(method, obj, args)
}

func (ip *Interp) call(m *source.Method, this *Object, args []Value) (Value, error) {
	if len(args) != len(m.Params) {
		return Value{}, fmt.Errorf("interp: %s: want %d args, got %d", m.QName(), len(m.Params), len(args))
	}
	fr := &frame{this: this, slots: make([]Value, len(m.Locals))}
	for i, p := range m.Params {
		fr.slots[p.Slot] = widenTo(args[i], p.Type)
	}
	c, ret, err := ip.execBlock(fr, m.Body)
	if err != nil {
		return Value{}, err
	}
	if c == ctrlReturn {
		return ret, nil
	}
	// Falling off the end returns the zero value.
	return Scalar(m.Ret.Zero()), nil
}

func widenTo(v Value, t source.Type) Value {
	if t.K == source.KDouble && v.K == val.Int {
		return Scalar(val.DoubleV(float64(v.I)))
	}
	return v
}

func (ip *Interp) execBlock(fr *frame, b *source.Block) (ctrl, Value, error) {
	for _, s := range b.Stmts {
		c, v, err := ip.execStmt(fr, s)
		if err != nil || c != ctrlNone {
			return c, v, err
		}
	}
	return ctrlNone, Value{}, nil
}

func (ip *Interp) execStmt(fr *frame, s source.Stmt) (ctrl, Value, error) {
	if ip.Hooks.OnStmt != nil {
		ip.Hooks.OnStmt(s.ID())
	}
	prev := ip.curStmt
	ip.curStmt = s.ID()
	defer func() { ip.curStmt = prev }()

	switch st := s.(type) {
	case *source.DeclStmt:
		v := Scalar(st.Local.Type.Zero())
		if st.Init != nil {
			var err error
			v, err = ip.eval(fr, st.Init)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if ip.Hooks.OnAssign != nil {
				ip.Hooks.OnAssign(st.ID(), Size(v))
			}
		}
		fr.slots[st.Local.Slot] = v
		return ctrlNone, Value{}, nil

	case *source.AssignStmt:
		return ctrlNone, Value{}, ip.execAssign(fr, st)

	case *source.ExprStmt:
		_, err := ip.eval(fr, st.X)
		return ctrlNone, Value{}, err

	case *source.IfStmt:
		cond, err := ip.eval(fr, st.Cond)
		if err != nil {
			return ctrlNone, Value{}, err
		}
		if cond.AsBool() {
			return ip.execBlock(fr, st.Then)
		}
		if st.Else != nil {
			return ip.execBlock(fr, st.Else)
		}
		return ctrlNone, Value{}, nil

	case *source.WhileStmt:
		for {
			cond, err := ip.eval(fr, st.Cond)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if !cond.AsBool() {
				return ctrlNone, Value{}, nil
			}
			c, v, err := ip.execBlock(fr, st.Body)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if c == ctrlBreak {
				return ctrlNone, Value{}, nil
			}
			if c == ctrlReturn {
				return c, v, nil
			}
			if ip.Hooks.OnStmt != nil {
				ip.Hooks.OnStmt(st.ID()) // each iteration re-evaluates the condition
			}
		}

	case *source.ForEachStmt:
		arrv, err := ip.eval(fr, st.Arr)
		if err != nil {
			return ctrlNone, Value{}, err
		}
		if arrv.Arr == nil {
			return ctrlNone, Value{}, rerr(st.StmtPos(), "foreach over null array")
		}
		n := len(arrv.Arr.Elems)
		for i := 0; i < n; i++ {
			fr.slots[st.Var.Slot] = widenTo(arrv.Arr.Elems[i], st.Var.Type)
			c, v, err := ip.execBlock(fr, st.Body)
			if err != nil {
				return ctrlNone, Value{}, err
			}
			if c == ctrlBreak {
				return ctrlNone, Value{}, nil
			}
			if c == ctrlReturn {
				return c, v, nil
			}
			if ip.Hooks.OnStmt != nil && i < n-1 {
				ip.Hooks.OnStmt(st.ID())
			}
		}
		return ctrlNone, Value{}, nil

	case *source.ReturnStmt:
		if st.X == nil {
			return ctrlReturn, Scalar(val.NullV()), nil
		}
		v, err := ip.eval(fr, st.X)
		if err != nil {
			return ctrlNone, Value{}, err
		}
		return ctrlReturn, v, nil

	case *source.BreakStmt:
		return ctrlBreak, Value{}, nil
	}
	return ctrlNone, Value{}, rerr(s.StmtPos(), "unhandled statement %T", s)
}

func (ip *Interp) execAssign(fr *frame, st *source.AssignStmt) error {
	rhs, err := ip.eval(fr, st.RHS)
	if err != nil {
		return err
	}

	apply := func(old Value) (Value, error) {
		if st.Op == source.AsnSet {
			return rhs, nil
		}
		return arith(st.Op, old, rhs, st.StmtPos())
	}

	switch lhs := st.LHS.(type) {
	case *source.VarExpr:
		nv, err := apply(fr.slots[lhs.Local.Slot])
		if err != nil {
			return err
		}
		nv = widenTo(nv, lhs.Local.Type)
		fr.slots[lhs.Local.Slot] = nv
		if ip.Hooks.OnAssign != nil {
			ip.Hooks.OnAssign(st.ID(), Size(nv))
		}
		return nil

	case *source.FieldExpr:
		recv, err := ip.eval(fr, lhs.Recv)
		if err != nil {
			return err
		}
		if recv.Obj == nil {
			return rerr(st.StmtPos(), "null dereference writing field %s", lhs.Field.Name)
		}
		nv, err := apply(recv.Obj.Fields[lhs.Field.Index])
		if err != nil {
			return err
		}
		nv = widenTo(nv, lhs.Field.Type)
		recv.Obj.Fields[lhs.Field.Index] = nv
		sz := Size(nv)
		if ip.Hooks.OnAssign != nil {
			ip.Hooks.OnAssign(st.ID(), sz)
		}
		if ip.Hooks.OnFieldWrite != nil {
			ip.Hooks.OnFieldWrite(lhs.Field.ID, sz)
		}
		return nil

	case *source.IndexExpr:
		arrv, err := ip.eval(fr, lhs.Arr)
		if err != nil {
			return err
		}
		if arrv.Arr == nil {
			return rerr(st.StmtPos(), "null dereference indexing array")
		}
		idx, err := ip.eval(fr, lhs.Idx)
		if err != nil {
			return err
		}
		i := int(idx.I)
		if i < 0 || i >= len(arrv.Arr.Elems) {
			return rerr(st.StmtPos(), "array index %d out of range [0,%d)", i, len(arrv.Arr.Elems))
		}
		nv, err := apply(arrv.Arr.Elems[i])
		if err != nil {
			return err
		}
		nv = widenTo(nv, arrv.Arr.Elem)
		arrv.Arr.Elems[i] = nv
		if ip.Hooks.OnAssign != nil {
			ip.Hooks.OnAssign(st.ID(), Size(nv))
		}
		return nil
	}
	return rerr(st.StmtPos(), "bad assignment target %T", st.LHS)
}

func arith(op source.AssignOp, l, r Value, pos source.Pos) (Value, error) {
	if l.K == val.Str {
		if op != source.AsnAdd {
			return Value{}, rerr(pos, "bad string operation")
		}
		return Scalar(val.StrV(l.S + r.S)), nil
	}
	if l.K == val.Double || r.K == val.Double {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch op {
		case source.AsnAdd:
			return Scalar(val.DoubleV(lf + rf)), nil
		case source.AsnSub:
			return Scalar(val.DoubleV(lf - rf)), nil
		case source.AsnMul:
			return Scalar(val.DoubleV(lf * rf)), nil
		case source.AsnDiv:
			if rf == 0 {
				return Value{}, rerr(pos, "division by zero")
			}
			return Scalar(val.DoubleV(lf / rf)), nil
		}
	}
	switch op {
	case source.AsnAdd:
		return Scalar(val.IntV(l.I + r.I)), nil
	case source.AsnSub:
		return Scalar(val.IntV(l.I - r.I)), nil
	case source.AsnMul:
		return Scalar(val.IntV(l.I * r.I)), nil
	case source.AsnDiv:
		if r.I == 0 {
			return Value{}, rerr(pos, "division by zero")
		}
		return Scalar(val.IntV(l.I / r.I)), nil
	}
	return Value{}, rerr(pos, "bad arithmetic op")
}

func (ip *Interp) eval(fr *frame, e source.Expr) (Value, error) {
	switch x := e.(type) {
	case *source.Lit:
		switch x.T.K {
		case source.KInt:
			return Scalar(val.IntV(x.I)), nil
		case source.KDouble:
			return Scalar(val.DoubleV(x.F)), nil
		case source.KString:
			return Scalar(val.StrV(x.S)), nil
		case source.KBool:
			return Scalar(val.BoolV(x.B)), nil
		default:
			return Scalar(val.NullV()), nil
		}

	case *source.VarExpr:
		return fr.slots[x.Local.Slot], nil

	case *source.ThisExpr:
		return objV(fr.this), nil

	case *source.ConvExpr:
		v, err := ip.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		return Scalar(val.DoubleV(v.AsFloat())), nil

	case *source.FieldExpr:
		recv, err := ip.eval(fr, x.Recv)
		if err != nil {
			return Value{}, err
		}
		if recv.Obj == nil {
			return Value{}, rerr(source.Pos{}, "null dereference reading field %s", x.Field.Name)
		}
		return recv.Obj.Fields[x.Field.Index], nil

	case *source.IndexExpr:
		arrv, err := ip.eval(fr, x.Arr)
		if err != nil {
			return Value{}, err
		}
		if arrv.Arr == nil {
			return Value{}, rerr(source.Pos{}, "null dereference indexing array")
		}
		idx, err := ip.eval(fr, x.Idx)
		if err != nil {
			return Value{}, err
		}
		i := int(idx.I)
		if i < 0 || i >= len(arrv.Arr.Elems) {
			return Value{}, rerr(source.Pos{}, "array index %d out of range [0,%d)", i, len(arrv.Arr.Elems))
		}
		return arrv.Arr.Elems[i], nil

	case *source.UnaryExpr:
		v, err := ip.eval(fr, x.X)
		if err != nil {
			return Value{}, err
		}
		if x.Op == source.OpNot {
			return Scalar(val.BoolV(!v.AsBool())), nil
		}
		if v.K == val.Double {
			return Scalar(val.DoubleV(-v.F)), nil
		}
		return Scalar(val.IntV(-v.I)), nil

	case *source.BinaryExpr:
		return ip.evalBinary(fr, x)

	case *source.CallExpr:
		var this *Object
		if x.Recv == nil {
			this = fr.this
		} else {
			recv, err := ip.eval(fr, x.Recv)
			if err != nil {
				return Value{}, err
			}
			if recv.Obj == nil {
				return Value{}, rerr(source.Pos{}, "null dereference calling %s", x.Name)
			}
			this = recv.Obj
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ip.eval(fr, a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		return ip.call(x.Method, this, args)

	case *source.BuiltinExpr:
		return ip.evalBuiltin(fr, x)

	case *source.NewObjectExpr:
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := ip.eval(fr, a)
			if err != nil {
				return Value{}, err
			}
			args[i] = v
		}
		obj := &Object{Class: x.Class, Fields: make([]Value, len(x.Class.Fields))}
		for i, f := range x.Class.Fields {
			obj.Fields[i] = Scalar(f.Type.Zero())
		}
		if x.Ctor != nil {
			if _, err := ip.call(x.Ctor, obj, args); err != nil {
				return Value{}, err
			}
		}
		return objV(obj), nil

	case *source.NewArrayExpr:
		n, err := ip.eval(fr, x.Len)
		if err != nil {
			return Value{}, err
		}
		if n.I < 0 {
			return Value{}, rerr(source.Pos{}, "negative array length %d", n.I)
		}
		arr := &Array{Elem: x.Elem, Elems: make([]Value, n.I)}
		for i := range arr.Elems {
			arr.Elems[i] = Scalar(x.Elem.Zero())
		}
		return arrV(arr), nil
	}
	return Value{}, rerr(source.Pos{}, "unhandled expression %T", e)
}

func (ip *Interp) evalBinary(fr *frame, x *source.BinaryExpr) (Value, error) {
	// Short-circuit logical operators.
	if x.Op == source.OpAnd || x.Op == source.OpOr {
		l, err := ip.eval(fr, x.L)
		if err != nil {
			return Value{}, err
		}
		if x.Op == source.OpAnd && !l.AsBool() {
			return Scalar(val.BoolV(false)), nil
		}
		if x.Op == source.OpOr && l.AsBool() {
			return Scalar(val.BoolV(true)), nil
		}
		r, err := ip.eval(fr, x.R)
		if err != nil {
			return Value{}, err
		}
		return Scalar(val.BoolV(r.AsBool())), nil
	}

	l, err := ip.eval(fr, x.L)
	if err != nil {
		return Value{}, err
	}
	r, err := ip.eval(fr, x.R)
	if err != nil {
		return Value{}, err
	}

	switch x.Op {
	case source.OpEq, source.OpNe:
		eq := refAwareEqual(l, r)
		if x.Op == source.OpNe {
			eq = !eq
		}
		return Scalar(val.BoolV(eq)), nil
	case source.OpLt, source.OpLe, source.OpGt, source.OpGe:
		var c int
		if l.K == val.Str {
			c = strings.Compare(l.S, r.S)
		} else {
			c = val.Compare(l.Value, r.Value)
		}
		var b bool
		switch x.Op {
		case source.OpLt:
			b = c < 0
		case source.OpLe:
			b = c <= 0
		case source.OpGt:
			b = c > 0
		case source.OpGe:
			b = c >= 0
		}
		return Scalar(val.BoolV(b)), nil
	case source.OpAdd:
		if l.K == val.Str {
			return Scalar(val.StrV(l.S + r.S)), nil
		}
		return arith(source.AsnAdd, l, r, source.Pos{})
	case source.OpSub:
		return arith(source.AsnSub, l, r, source.Pos{})
	case source.OpMul:
		return arith(source.AsnMul, l, r, source.Pos{})
	case source.OpDiv:
		return arith(source.AsnDiv, l, r, source.Pos{})
	case source.OpMod:
		if r.I == 0 {
			return Value{}, rerr(source.Pos{}, "division by zero")
		}
		return Scalar(val.IntV(l.I % r.I)), nil
	}
	return Value{}, rerr(source.Pos{}, "unhandled binary op")
}

func refAwareEqual(l, r Value) bool {
	switch {
	case l.K == val.Obj || r.K == val.Obj:
		return l.Obj == r.Obj
	case l.K == val.Arr || r.K == val.Arr:
		return l.Arr == r.Arr
	case l.K == val.Table || r.K == val.Table:
		return l.Tab == r.Tab
	case l.K == val.Null && r.K == val.Null:
		return true
	default:
		return l.Value.Equal(r.Value)
	}
}

// Sha1Round is the unit of CPU-intensive work behind sys.sha1: one
// SHA-1 digest over the 8-byte encoding of x, folded back to an int.
func Sha1Round(x int64) int64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(x))
	h := sha1.Sum(b[:])
	return int64(binary.LittleEndian.Uint64(h[:8]))
}

func (ip *Interp) evalBuiltin(fr *frame, x *source.BuiltinExpr) (Value, error) {
	evalArgs := func(from int) ([]Value, error) {
		out := make([]Value, 0, len(x.Args)-from)
		for _, a := range x.Args[from:] {
			v, err := ip.eval(fr, a)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}

	switch x.B {
	case source.BQuery, source.BUpdate:
		if ip.Hooks.OnDBCall != nil {
			ip.Hooks.OnDBCall(ip.curStmt)
		}
		sql := x.SQLText()
		args, err := evalArgs(1)
		if err != nil {
			return Value{}, err
		}
		raw := make([]val.Value, len(args))
		for i, a := range args {
			raw[i] = a.Value
		}
		if x.B == source.BQuery {
			rs, err := ip.DB.Query(sql, raw...)
			if err != nil {
				return Value{}, fmt.Errorf("db.query: %w", err)
			}
			return tabV(rs), nil
		}
		n, err := ip.DB.Exec(sql, raw...)
		if err != nil {
			return Value{}, fmt.Errorf("db.update: %w", err)
		}
		return Scalar(val.IntV(int64(n))), nil

	case source.BBegin, source.BCommit, source.BRollback:
		if ip.Hooks.OnDBCall != nil {
			ip.Hooks.OnDBCall(ip.curStmt)
		}
		var err error
		switch x.B {
		case source.BBegin:
			err = ip.DB.Begin()
		case source.BCommit:
			err = ip.DB.Commit()
		default:
			err = ip.DB.Rollback()
		}
		if err != nil {
			return Value{}, fmt.Errorf("db.%s: %w", map[source.Builtin]string{
				source.BBegin: "begin", source.BCommit: "commit", source.BRollback: "rollback"}[x.B], err)
		}
		return Scalar(val.NullV()), nil

	case source.BPrint:
		args, err := evalArgs(0)
		if err != nil {
			return Value{}, err
		}
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.Value.String()
		}
		fmt.Fprintln(ip.Out, strings.Join(parts, " "))
		return Scalar(val.NullV()), nil

	case source.BSha1:
		v, err := ip.eval(fr, x.Args[0])
		if err != nil {
			return Value{}, err
		}
		ip.Sha1Count++
		return Scalar(val.IntV(Sha1Round(v.I))), nil

	case source.BStr:
		v, err := ip.eval(fr, x.Args[0])
		if err != nil {
			return Value{}, err
		}
		return Scalar(val.StrV(v.Value.String())), nil

	case source.BRows:
		t, err := ip.evalTable(fr, x.Recv)
		if err != nil {
			return Value{}, err
		}
		return Scalar(val.IntV(int64(len(t.Rows)))), nil

	case source.BGetInt, source.BGetDouble, source.BGetString:
		t, err := ip.evalTable(fr, x.Recv)
		if err != nil {
			return Value{}, err
		}
		rv, err := ip.eval(fr, x.Args[0])
		if err != nil {
			return Value{}, err
		}
		cv, err := ip.eval(fr, x.Args[1])
		if err != nil {
			return Value{}, err
		}
		cell, err := TableCell(t, int(rv.I), int(cv.I))
		if err != nil {
			return Value{}, err
		}
		return Scalar(CoerceCell(cell, x.B)), nil

	case source.BLen:
		recv, err := ip.eval(fr, x.Recv)
		if err != nil {
			return Value{}, err
		}
		if recv.K == val.Str {
			return Scalar(val.IntV(int64(len(recv.S)))), nil
		}
		if recv.Arr == nil {
			return Value{}, rerr(source.Pos{}, "null dereference reading .length")
		}
		return Scalar(val.IntV(int64(len(recv.Arr.Elems)))), nil
	}
	return Value{}, rerr(source.Pos{}, "unhandled builtin %v", x.B)
}

func (ip *Interp) evalTable(fr *frame, recv source.Expr) (*sqldb.ResultSet, error) {
	v, err := ip.eval(fr, recv)
	if err != nil {
		return nil, err
	}
	if v.Tab == nil {
		return nil, errors.New("interp: null table")
	}
	return v.Tab, nil
}

// TableCell fetches a bounds-checked cell from a result set.
func TableCell(t *sqldb.ResultSet, r, c int) (val.Value, error) {
	if r < 0 || r >= len(t.Rows) {
		return val.Value{}, fmt.Errorf("table row %d out of range [0,%d)", r, len(t.Rows))
	}
	if c < 0 || c >= len(t.Rows[r]) {
		return val.Value{}, fmt.Errorf("table column %d out of range [0,%d)", c, len(t.Rows[r]))
	}
	return t.Rows[r][c], nil
}

// CoerceCell converts a database cell to the type an accessor expects
// (getInt on a DOUBLE column truncates, getDouble on INT widens,
// getString stringifies anything).
func CoerceCell(cell val.Value, b source.Builtin) val.Value {
	switch b {
	case source.BGetInt:
		if cell.K == val.Double {
			return val.IntV(int64(cell.F))
		}
		if cell.K == val.Null {
			return val.IntV(0)
		}
		return cell
	case source.BGetDouble:
		if cell.K == val.Int {
			return val.DoubleV(float64(cell.I))
		}
		if cell.K == val.Null {
			return val.DoubleV(0)
		}
		return cell
	default:
		if cell.K != val.Str {
			return val.StrV(cell.String())
		}
		return cell
	}
}
