package pyxis_test

// One benchmark per paper table/figure (DESIGN.md experiment index).
// `go test -bench .` regenerates every artifact at a reduced scale and
// reports the headline metrics; `go run ./cmd/pyxis-bench -full` runs
// the paper-scale sweeps. Absolute numbers come from the calibrated
// simulator; the *shapes* are asserted by the unit tests in
// internal/bench.

import (
	"testing"
	"time"

	"pyxis/internal/bench"
	"pyxis/internal/solver"
)

func reportTable(b *testing.B, t *bench.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", t)
}

// BenchmarkFig9 — TPC-C latency/CPU/network sweep, 16-core DB.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig9(bench.QuickScale())
		reportTable(b, t, err)
	}
}

// BenchmarkFig10 — TPC-C sweep, 3-core DB, low budget.
func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig10(bench.QuickScale())
		reportTable(b, t, err)
	}
}

// BenchmarkFig11 — dynamic partition switching under a load spike.
func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig11(bench.QuickScale())
		reportTable(b, t, err)
	}
}

// BenchmarkFig12 — TPC-W browsing mix, 16-core DB.
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig12(bench.QuickScale())
		reportTable(b, t, err)
	}
}

// BenchmarkFig13 — TPC-W browsing mix, 3-core DB.
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig13(bench.QuickScale())
		reportTable(b, t, err)
	}
}

// BenchmarkFig14 — microbenchmark 2 partition × load table.
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Fig14(bench.QuickScale())
		reportTable(b, t, err)
	}
}

// ---------------------------------------------------------------------------
// Microbenchmark 1 (§7.3): real wall-clock overhead of the Pyxis
// execution-block runtime vs native Go on a single-sided linked list.
// The paper measured ~6×.
// ---------------------------------------------------------------------------

func BenchmarkMicro1Pyxis(b *testing.B) {
	part, err := bench.Micro1Partition()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Micro1Pyxis(part, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro1Native(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Micro1Native(1000)
	}
}

// BenchmarkMicro1Overhead reports the measured Pyxis/native ratio as a
// custom metric (the paper's "6×").
func BenchmarkMicro1Overhead(b *testing.B) {
	part, err := bench.Micro1Partition()
	if err != nil {
		b.Fatal(err)
	}
	const n = 2000
	measure := func(f func()) time.Duration {
		start := time.Now()
		f()
		return time.Since(start)
	}
	var pyx, nat time.Duration
	for i := 0; i < b.N; i++ {
		pyx += measure(func() {
			if _, err := bench.Micro1Pyxis(part, n); err != nil {
				b.Fatal(err)
			}
		})
		nat += measure(func() { bench.Micro1Native(n) })
	}
	if nat > 0 {
		b.ReportMetric(float64(pyx)/float64(nat), "x-overhead")
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)
// ---------------------------------------------------------------------------

// BenchmarkAblationReorder measures the §4.4 statement reordering on a
// program whose console and database statements interleave: without
// reordering every adjacent pair is a placement change; with it, each
// side coalesces into one run.
func BenchmarkAblationReorder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reordered, unordered, err := bench.InterleavedReorderAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(reordered), "transfers-reordered")
		b.ReportMetric(float64(unordered), "transfers-unordered")
		if reordered >= unordered {
			b.Fatalf("reordering should reduce transfers: %d >= %d", reordered, unordered)
		}
	}
}

// BenchmarkAblationSolvers compares solver quality and speed on the
// TPC-C partition graph.
func BenchmarkAblationSolvers(b *testing.B) {
	for _, s := range []solver.Solver{&solver.MinCutSolver{}, &solver.Greedy{}, &solver.BranchBound{MaxNodes: 200}} {
		s := s
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				obj, err := bench.TPCCSolverObjective(s, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(obj*1e3, "objective-ms")
			}
		})
	}
}

// BenchmarkAblationWeights contrasts the paper's bandwidth-charged
// data edges with (incorrectly) latency-charged ones: charging latency
// per data edge inflates the objective and changes placements.
func BenchmarkAblationWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		correct, naive, err := bench.TPCCWeightAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(correct, "dbstmts-bandwidth-weighted")
		b.ReportMetric(naive, "dbstmts-latency-weighted")
	}
}
