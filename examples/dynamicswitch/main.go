// Dynamic switching (paper §6.3): two partitions of the same program —
// stored-procedure-like (high budget) and client-side-queries-like
// (low budget) — deployed side by side behind a load-driven switcher.
// As reported database CPU load crosses the 40% threshold, the EWMA
// shifts new entry invocations to the low-budget partition, and back.
package main

import (
	"fmt"
	"log"

	"pyxis/internal/bench"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

func main() {
	cfg := bench.DefaultTPCC()
	high, err := cfg.PyxisPartition(1.0)
	if err != nil {
		log.Fatal(err)
	}
	low, err := cfg.PyxisPartition(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("high-budget:", high.Describe())
	fmt.Println("low-budget: ", low.Describe())

	db := cfg.Load()
	depHigh := high.Deploy(db, runtime.Options{})
	depLow := low.Deploy(db, runtime.Options{})

	oidHigh, err := depHigh.Client.NewObject("TPCC")
	if err != nil {
		log.Fatal(err)
	}
	oidLow, err := depLow.Client.NewObject("TPCC")
	if err != nil {
		log.Fatal(err)
	}

	sw := runtime.NewSwitcher() // alpha 0.2, threshold 40%
	dyn := &runtime.DynamicClient{High: depHigh.Client, Low: depLow.Client, Switcher: sw}

	// Simulated load reports arriving every "10 seconds": idle, spike, recovery.
	// (The real stack piggy-backs these on mux replies; see
	// internal/bench.RunParallelDynamic and pyxis-bench -exp dynamic-wall.)
	loadTrace := []float64{5, 8, 10, 95, 96, 97, 95, 12, 8, 5, 5, 5}
	run := func(k int64) {
		// CallEntry picks per call, maps the pick to the matching heap's
		// OID, and counts the pick on completion — sheds and failures
		// never inflate the mix.
		r, err := dyn.CallEntry("TPCC.newOrder", oidHigh, oidLow,
			val.IntV(1), val.IntV(k%10+1), val.IntV(k%30+1),
			val.IntV(4), val.IntV(k*13+7), val.IntV(1000), val.BoolV(false))
		if err != nil {
			log.Fatal(err)
		}
		which := "high"
		if r.Low {
			which = "low"
		}
		fmt.Printf("  txn %2d served by %s-budget partition\n", k, which)
	}

	txn := int64(0)
	for i, load := range loadTrace {
		ewma := sw.Observe(load)
		fmt.Printf("t=%3ds load=%.0f%% ewma=%.1f%% -> use low-budget: %v\n",
			i*10, load, ewma, sw.UseLowBudget())
		for j := 0; j < 2; j++ {
			run(txn)
			txn++
		}
	}

	lowN, highN := dyn.Picks()
	fmt.Printf("\nserved %d transactions via low-budget, %d via high-budget partitions\n", lowN, highN)
	_ = sqldb.Open // keep import shape stable
}
