// Solver comparison: sweep the DB instruction budget over the TPC-C
// partition graph and show, per solver, the objective (estimated
// seconds of network time per profiling run), the placement split, and
// the solve time — the paper's "multiple partitions under multiple
// budgets" machinery (§4.3) made visible. The LP relaxation bound is
// printed where the instance is small enough for the simplex.
package main

import (
	"fmt"
	"log"

	"pyxis/internal/bench"
	"pyxis/internal/core"
	"pyxis/internal/solver"
)

func main() {
	cfg := bench.DefaultTPCC()
	part, err := cfg.PyxisPartition(1.0)
	if err != nil {
		log.Fatal(err)
	}
	sys := part.System
	g := sys.EnsureGraph()
	fmt.Println("TPC-C partition graph:", g.Stats())
	fmt.Printf("total statement load: %.0f\n\n", sys.TotalLoad())

	solvers := []solver.Solver{
		solver.Auto{},
		&solver.MinCutSolver{},
		&solver.Greedy{},
	}
	fmt.Printf("%-10s %-22s %-14s %-12s %s\n", "budget", "solver", "objective(ms)", "db/app", "time")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		budget := sys.TotalLoad() * frac
		for _, s := range solvers {
			pt := core.New(g)
			pt.Solver = s
			_, rep, err := pt.Partition(budget)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10.2f %-22s %-14.3f %3d/%-8d %v\n",
				frac, s.Name(), rep.Objective*1e3, rep.DBNodes, rep.AppNodes, rep.SolveTime.Round(10000))
		}
	}

	// LP relaxation lower bound on a mid-budget instance.
	prob, _, err := core.Lower(g, sys.TotalLoad()*0.5)
	if err != nil {
		log.Fatal(err)
	}
	if lower, _, err := solver.LPRelaxation(prob); err == nil {
		fmt.Printf("\nLP relaxation lower bound at budget 0.5: %.3f ms\n", lower*1e3)
	} else {
		fmt.Println("\nLP relaxation skipped:", err)
	}
}
