CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name VARCHAR(10), w_tax DOUBLE, w_ytd DOUBLE);
CREATE TABLE district (d_w_id INT, d_id INT, d_tax DOUBLE, d_ytd DOUBLE, d_next_o_id INT, PRIMARY KEY (d_w_id, d_id));
CREATE TABLE customer (c_w_id INT, c_d_id INT, c_id INT, c_last VARCHAR(16), c_discount DOUBLE, c_balance DOUBLE, PRIMARY KEY (c_w_id, c_d_id, c_id));
CREATE TABLE orders (o_w_id INT, o_d_id INT, o_id INT, o_c_id INT, o_ol_cnt INT, PRIMARY KEY (o_w_id, o_d_id, o_id));
CREATE TABLE new_order (no_w_id INT, no_d_id INT, no_o_id INT, PRIMARY KEY (no_w_id, no_d_id, no_o_id));
CREATE TABLE order_line (ol_w_id INT, ol_d_id INT, ol_o_id INT, ol_number INT, ol_i_id INT, ol_quantity INT, ol_amount DOUBLE, PRIMARY KEY (ol_w_id, ol_d_id, ol_o_id, ol_number));
CREATE TABLE item (i_id INT PRIMARY KEY, i_name VARCHAR(24), i_price DOUBLE);
CREATE TABLE stock (s_w_id INT, s_i_id INT, s_quantity INT, s_ytd DOUBLE, s_order_cnt INT, PRIMARY KEY (s_w_id, s_i_id))
