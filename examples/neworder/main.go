// New-order over real TCP: this example deploys the TPC-C new-order
// transaction as a genuine two-process-style Pyxis deployment — a
// database server (sqldb + DB-side runtime) listening on TCP ports,
// and an application-side client that connects, runs transactions,
// and reports the wire traffic. It demonstrates that the same
// partition that the simulator evaluates also executes over a real
// network stack (cmd/pyxis-dbserver and cmd/pyxis-app split the same
// code across two processes).
package main

import (
	"fmt"
	"log"

	"pyxis/internal/bench"
	"pyxis/internal/dbapi"
	"pyxis/internal/pdg"
	"pyxis/internal/rpc"
	"pyxis/internal/runtime"
	"pyxis/internal/val"
)

func main() {
	cfg := bench.DefaultTPCC()

	// Generate the stored-procedure-like partition (high budget).
	part, err := cfg.PyxisPartition(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partition:", part.Describe())

	// --- "Database server": database + DB-side runtime over TCP ----------
	db := cfg.Load()
	dbSrv, err := rpc.NewServer("127.0.0.1:0", func() rpc.Handler { return dbapi.NewHandler(db) })
	if err != nil {
		log.Fatal(err)
	}
	defer dbSrv.Close()
	dbPeer := runtime.NewPeer(part.Compiled, pdg.DB, nil)
	ctlSrv, err := rpc.NewServer("127.0.0.1:0", func() rpc.Handler {
		// One runtime session per accepted connection: the plain
		// Transport is the single-session special case of the
		// multiplexed protocol cmd/pyxis-dbserver speaks.
		return runtime.Handler(dbPeer.NewSession(dbapi.NewLocal(db)))
	})
	if err != nil {
		log.Fatal(err)
	}
	defer ctlSrv.Close()
	fmt.Printf("database server: db=%s ctl=%s\n", dbSrv.Addr(), ctlSrv.Addr())

	// --- "Application server": connect and run transactions --------------
	dbWire, err := rpc.Dial(dbSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer dbWire.Close()
	ctlWire, err := rpc.Dial(ctlSrv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer ctlWire.Close()

	appPeer := runtime.NewPeer(part.Compiled, pdg.App, nil)
	appSess := appPeer.NewSession(dbapi.NewClient(dbWire))
	client := runtime.NewClient(appSess, ctlWire)

	oid, err := client.NewObject("TPCC")
	if err != nil {
		log.Fatal(err)
	}
	for k := int64(0); k < 5; k++ {
		total, err := client.CallEntry("TPCC.newOrder", oid,
			val.IntV(1), val.IntV(k%10+1), val.IntV(k%30+1),
			val.IntV(5), val.IntV(k*37+11), val.IntV(1000), val.BoolV(false))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("new order #%d: total = %s\n", k+1, total)
	}

	ctl := ctlWire.Stats()
	dbs := dbWire.Stats()
	fmt.Printf("\nwire traffic: control transfers=%d (%d bytes), app-side db calls=%d\n",
		ctl.Calls, ctl.BytesSent+ctl.BytesRecv, dbs.Calls)
	fmt.Println("(with the high budget, every database operation ran colocated: the app side made", dbs.Calls, "db round trips)")
}
