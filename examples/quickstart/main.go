// Quickstart: partition the paper's running example (Fig. 2, the
// Order class) at three budgets and watch the round-trip counts drop
// as code migrates to the database server — the paper's §3 walkthrough
// end to end.
package main

import (
	_ "embed"
	"fmt"
	"log"
	"os"

	"pyxis"
	"pyxis/internal/interp"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

// The program and its schema live in standalone files so the same
// source the example deploys is also fed to pyxisc in CI — including
// `pyxisc -verify`, which checks every budget's compiled blocks.
//
//go:embed order.pyxj
var orderSrc string

//go:embed order.sql
var schema string

func freshDB() *sqldb.DB {
	db := sqldb.Open()
	if err := pyxis.ExecScript(db, schema); err != nil {
		log.Fatal(err)
	}
	return db
}

func main() {
	sys, err := pyxis.Load(orderSrc)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Profile a representative workload (paper §4.1).
	err = sys.ProfileWorkload(freshDB(), func(ip *interp.Interp) error {
		obj, err := ip.NewObject("Order", interp.Scalar(val.IntV(7)))
		if err != nil {
			return err
		}
		_, err = ip.CallEntry(sys.Prog.Method("Order", "placeOrder"), obj, val.IntV(3), val.DoubleV(0.9))
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partition graph:", sys.EnsureGraph().Stats())
	fmt.Println()

	// 2. Partition at three budgets and run each deployment.
	for _, frac := range []float64{0, 0.7, 1.0} {
		part, err := sys.PartitionAt(frac)
		if err != nil {
			log.Fatal(err)
		}
		db := freshDB()
		dep := part.Deploy(db, runtime.Options{})
		oid, err := dep.Client.NewObject("Order", val.IntV(7))
		if err != nil {
			log.Fatal(err)
		}
		total, err := dep.Client.CallEntry("Order.placeOrder", oid, val.IntV(3), val.DoubleV(0.9))
		if err != nil {
			log.Fatal(err)
		}
		ctl, dbw := dep.WireStats()
		fmt.Printf("budget %.1f: total=%s  control-transfers=%d  db-round-trips=%d  bytes=%d\n",
			frac, total, ctl.Calls, dbw.Calls, dep.TotalBytes())
		fmt.Printf("  %s\n", part.Describe())
	}

	// 3. Show the PyxIL for the mid partition (Fig. 3 style).
	part, err := sys.PartitionAt(0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- PyxIL at budget 0.7 ---")
	if err := part.WritePyxIL(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
