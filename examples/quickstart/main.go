// Quickstart: partition the paper's running example (Fig. 2, the
// Order class) at three budgets and watch the round-trip counts drop
// as code migrates to the database server — the paper's §3 walkthrough
// end to end.
package main

import (
	"fmt"
	"log"
	"os"

	"pyxis"
	"pyxis/internal/interp"
	"pyxis/internal/runtime"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
)

const orderSrc = `
class Order {
    int id;
    double[] realCosts;
    double totalCost;

    Order(int id) {
        this.id = id;
    }

    entry double placeOrder(int cid, double dct) {
        totalCost = 0;
        computeTotalCost(dct);
        updateAccount(cid, totalCost);
        return totalCost;
    }

    void computeTotalCost(double dct) {
        int i = 0;
        double[] costs = getCosts();
        realCosts = new double[costs.length];
        for (double itemCost : costs) {
            double realCost;
            realCost = itemCost * dct;
            totalCost += realCost;
            realCosts[i] = realCost;
            insertNewLineItem(id, i, realCost);
            i++;
        }
    }

    double[] getCosts() {
        table t = db.query("SELECT cost FROM line_items WHERE order_id = ? ORDER BY num", id);
        double[] costs = new double[t.rows()];
        for (int r = 0; r < t.rows(); r++) {
            costs[r] = t.getDouble(r, 0);
        }
        return costs;
    }

    void insertNewLineItem(int oid, double num, double cost) {
        db.update("INSERT INTO new_line_items VALUES (?, ?, ?)", oid, num, cost);
    }

    void updateAccount(int cid, double total) {
        db.update("UPDATE accounts SET balance = balance - ? WHERE cid = ?", total, cid);
    }
}
`

const schema = `
CREATE TABLE line_items (order_id INT, num INT, cost DOUBLE, PRIMARY KEY (order_id, num));
CREATE TABLE new_line_items (order_id INT, num INT, cost DOUBLE, PRIMARY KEY (order_id, num));
CREATE TABLE accounts (cid INT PRIMARY KEY, balance DOUBLE);
INSERT INTO accounts VALUES (3, 1000.0);
INSERT INTO line_items VALUES (7, 0, 10.0);
INSERT INTO line_items VALUES (7, 1, 11.0);
INSERT INTO line_items VALUES (7, 2, 12.0);
INSERT INTO line_items VALUES (7, 3, 13.0);
INSERT INTO line_items VALUES (7, 4, 14.0)
`

func freshDB() *sqldb.DB {
	db := sqldb.Open()
	if err := pyxis.ExecScript(db, schema); err != nil {
		log.Fatal(err)
	}
	return db
}

func main() {
	sys, err := pyxis.Load(orderSrc)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Profile a representative workload (paper §4.1).
	err = sys.ProfileWorkload(freshDB(), func(ip *interp.Interp) error {
		obj, err := ip.NewObject("Order", interp.Scalar(val.IntV(7)))
		if err != nil {
			return err
		}
		_, err = ip.CallEntry(sys.Prog.Method("Order", "placeOrder"), obj, val.IntV(3), val.DoubleV(0.9))
		return err
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partition graph:", sys.EnsureGraph().Stats())
	fmt.Println()

	// 2. Partition at three budgets and run each deployment.
	for _, frac := range []float64{0, 0.7, 1.0} {
		part, err := sys.PartitionAt(frac)
		if err != nil {
			log.Fatal(err)
		}
		db := freshDB()
		dep := part.Deploy(db, runtime.Options{})
		oid, err := dep.Client.NewObject("Order", val.IntV(7))
		if err != nil {
			log.Fatal(err)
		}
		total, err := dep.Client.CallEntry("Order.placeOrder", oid, val.IntV(3), val.DoubleV(0.9))
		if err != nil {
			log.Fatal(err)
		}
		ctl, dbw := dep.WireStats()
		fmt.Printf("budget %.1f: total=%s  control-transfers=%d  db-round-trips=%d  bytes=%d\n",
			frac, total, ctl.Calls, dbw.Calls, dep.TotalBytes())
		fmt.Printf("  %s\n", part.Describe())
	}

	// 3. Show the PyxIL for the mid partition (Fig. 3 style).
	part, err := sys.PartitionAt(0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- PyxIL at budget 0.7 ---")
	if err := part.WritePyxIL(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
