CREATE TABLE line_items (order_id INT, num INT, cost DOUBLE, PRIMARY KEY (order_id, num));
CREATE TABLE new_line_items (order_id INT, num INT, cost DOUBLE, PRIMARY KEY (order_id, num));
CREATE TABLE accounts (cid INT PRIMARY KEY, balance DOUBLE);
INSERT INTO accounts VALUES (3, 1000.0);
INSERT INTO line_items VALUES (7, 0, 10.0);
INSERT INTO line_items VALUES (7, 1, 11.0);
INSERT INTO line_items VALUES (7, 2, 12.0);
INSERT INTO line_items VALUES (7, 3, 13.0);
INSERT INTO line_items VALUES (7, 4, 14.0)
