module pyxis

go 1.24
