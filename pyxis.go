// Package pyxis automatically partitions database applications between
// an application server and a database server, reproducing the system
// of Cheung, Arden, Madden and Myers, "Automatic Partitioning of
// Database Applications" (VLDB 2012).
//
// The pipeline mirrors the paper's architecture (Fig. 1):
//
//	src := `class Order { ... entry void placeOrder(int cid, double dct) {...} }`
//	sys, _ := pyxis.Load(src)
//	db := sqldb.Open()                      // the database substrate
//	// 1. Profile a representative workload (paper §4.1).
//	sys.ProfileWorkload(db, func(ip *interp.Interp) error { ... })
//	// 2. Build the weighted partition graph (§4.2) and solve the
//	//    placement BIP under a DB instruction budget (§4.3).
//	part, _ := sys.Partition(sys.TotalLoad() * 0.9)
//	// 3. Deploy the compiled execution blocks on the two runtimes (§5, §6).
//	dep := part.Deploy(db, runtime.Options{RTT: 2 * time.Millisecond})
//	oid, _ := dep.Client.NewObject("Order", val.IntV(42))
//	dep.Client.CallEntry("Order.placeOrder", oid, val.IntV(7), val.DoubleV(0.9))
//
// Multiple partitions generated at different budgets can be installed
// behind a runtime.DynamicClient, which switches between them as
// database load changes (§6.3).
package pyxis

import (
	"fmt"
	"io"
	"strings"

	"pyxis/internal/analysis"
	"pyxis/internal/compile"
	"pyxis/internal/core"
	"pyxis/internal/dbapi"
	"pyxis/internal/interp"
	"pyxis/internal/pdg"
	"pyxis/internal/profile"
	"pyxis/internal/pyxil"
	"pyxis/internal/runtime"
	"pyxis/internal/solver"
	"pyxis/internal/source"
	"pyxis/internal/sqldb"
	"pyxis/internal/val"
	"pyxis/internal/verify"
)

// System is a loaded application: checked source plus the static
// analyses, ready to be profiled and partitioned.
type System struct {
	Prog     *source.Program
	Analysis *analysis.Result
	Profile  *profile.Profile
	Graph    *pdg.Graph

	// GraphOpts tunes partition-graph weights (latency/bandwidth
	// override; zero values take the profile's measurements).
	GraphOpts pdg.Options
	// Solver is used by Partition (default: Lagrangian min cut).
	Solver solver.Solver
	// NoReorder disables the §4.4 statement reordering.
	NoReorder bool
	// NoFuse disables the superblock fusion post-pass, leaving the
	// compiler's raw block graph (the seed pipeline; benches use it to
	// price fusion).
	NoFuse bool
	// NoVerify disables the independent program verifier
	// (internal/verify) that otherwise checks every compiled program —
	// pre-fusion inside compile.Compile and again after Fuse. The
	// verifier re-derives structure, def-before-use, liveness masks and
	// transfer legality from scratch; leave it on outside compile-heavy
	// benchmark loops.
	NoVerify bool
}

// Load parses, checks and statically analyzes a PyxJ program.
func Load(src string) (*System, error) {
	prog, err := source.Load(src)
	if err != nil {
		return nil, err
	}
	return &System{
		Prog:     prog,
		Analysis: analysis.Run(prog),
		Profile:  profile.New(),
	}, nil
}

// MustLoad is Load for known-good embedded sources.
func MustLoad(src string) *System {
	s, err := Load(src)
	if err != nil {
		panic(err)
	}
	return s
}

// ProfileWorkload executes a workload against the reference
// interpreter with profiling instrumentation enabled, accumulating
// execution counts and data sizes (paper §4.1). It may be called
// multiple times; counts accumulate.
func (s *System) ProfileWorkload(db *sqldb.DB, fn func(ip *interp.Interp) error) error {
	ip := interp.New(s.Prog, dbapi.NewLocal(db))
	ip.Hooks = s.Profile.Hooks()
	if err := fn(ip); err != nil {
		return err
	}
	s.Graph = nil // weights are stale; rebuild lazily
	return nil
}

// ProfileSynthetic builds a rough profile by invoking every entry
// method once with zero-valued arguments against db. Real deployments
// should profile a representative workload instead (§4.1); this keeps
// CLI tools usable without one. Entry failures are tolerated (the
// partial profile still weights the code that did run).
func (s *System) ProfileSynthetic(db *sqldb.DB) error {
	return s.ProfileWorkload(db, func(ip *interp.Interp) error {
		for _, m := range s.Prog.EntryMethods() {
			var ctorArgs []interp.Value
			if ctor := m.Class.MethodByName(m.Class.Name); ctor != nil {
				for _, p := range ctor.Params {
					ctorArgs = append(ctorArgs, interp.Scalar(p.Type.Zero()))
				}
			}
			obj, err := ip.NewObject(m.Class.Name, ctorArgs...)
			if err != nil {
				continue
			}
			args := make([]val.Value, len(m.Params))
			for i, p := range m.Params {
				args[i] = p.Type.Zero()
			}
			_, _ = ip.CallEntry(m, obj, args...)
		}
		return nil
	})
}

// ExecScript runs ';'-separated SQL statements against db (schema
// loading for tools and tests).
func ExecScript(db *sqldb.DB, script string) error {
	sess := db.NewSession()
	for _, stmt := range strings.Split(script, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		if _, err := sess.Exec(stmt); err != nil {
			return fmt.Errorf("pyxis: schema statement %q: %w", stmt, err)
		}
	}
	return nil
}

// EnsureGraph builds (or rebuilds) the weighted partition graph.
func (s *System) EnsureGraph() *pdg.Graph {
	if s.Graph == nil {
		s.Graph = pdg.Build(s.Analysis, s.Profile, s.GraphOpts)
	}
	return s.Graph
}

// TotalLoad is the DB instruction load of running every statement on
// the database (the budget that admits an all-DB partition).
func (s *System) TotalLoad() float64 { return core.TotalLoad(s.EnsureGraph()) }

// Partition solves placement under the given DB instruction budget
// and compiles the resulting PyxIL to execution blocks.
func (s *System) Partition(budget float64) (*Partition, error) {
	g := s.EnsureGraph()
	pt := core.New(g)
	if s.Solver != nil {
		pt.Solver = s.Solver
	}
	place, rep, err := pt.Partition(budget)
	if err != nil {
		return nil, err
	}
	px := pyxil.Generate(s.Analysis, g, place, pyxil.Options{NoReorder: s.NoReorder})
	var copts []compile.Option
	if s.NoVerify {
		copts = append(copts, compile.NoVerify())
	}
	compiled, err := compile.Compile(px, copts...)
	if err != nil {
		return nil, err
	}
	if !s.NoFuse {
		compile.Fuse(compiled)
		// Fusion rewrites blocks in place and computes the liveness
		// masks the transfer codec ships; re-verify the result so a
		// fusion bug surfaces here instead of as wire corruption.
		if !s.NoVerify {
			if err := verify.Program(compiled); err != nil {
				return nil, fmt.Errorf("pyxis: fused program failed verification: %w", err)
			}
		}
	}
	return &Partition{System: s, Place: place, PyxIL: px, Compiled: compiled, Report: rep}, nil
}

// PartitionAt is Partition at a fraction of the total load (0 = all
// statements on the application server; 1 = budget for everything on
// the database server).
func (s *System) PartitionAt(fraction float64) (*Partition, error) {
	return s.Partition(s.TotalLoad() * fraction)
}

// Partition is one generated partitioning: placements, PyxIL, and the
// compiled execution-block program.
type Partition struct {
	System   *System
	Place    pdg.Placement
	PyxIL    *pyxil.Program
	Compiled *compile.Program
	Report   *core.Report
}

// Deploy wires the partition to a database in-process (tests,
// examples, simulation). For a real two-machine deployment see
// cmd/pyxis-dbserver and cmd/pyxis-app.
func (p *Partition) Deploy(db *sqldb.DB, opts runtime.Options) *runtime.Deployment {
	return runtime.NewDeployment(p.Compiled, db, opts)
}

// DBStatements returns how many statements the partition placed on the
// database server.
func (p *Partition) DBStatements() int { return p.Report.DBNodes }

// Describe summarizes the partition.
func (p *Partition) Describe() string {
	return fmt.Sprintf("%s; transfers(static)=%d", p.Report,
		pyxil.ControlTransfers(p.System.Prog, p.Place))
}

// WritePyxIL renders the PyxIL program (Fig. 3 style) to w.
func (p *Partition) WritePyxIL(w io.Writer) error {
	_, err := io.WriteString(w, p.PyxIL.String())
	return err
}
